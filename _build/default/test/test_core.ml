(* Tests for the paper's core contribution: the MMS queueing model, the
   tolerance index, the bottleneck formulas (Eqs. 4 and 5), thread
   partitioning and scaling analyses.  Several tests pin the numeric
   anchors recovered from the paper's text. *)

open Lattol_core
open Lattol_topology
open Lattol_queueing

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

module Astring_contains = struct
  let contains haystack needle =
    let h = String.length haystack and n = String.length needle in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    n = 0 || go 0
end

let default = Params.default

(* ------------------------------------------------------------------ *)
(* Params *)

let test_default_params () =
  Alcotest.(check int) "P" 16 (Params.num_processors default);
  close "occupancy" 1. (Params.processor_occupancy default);
  close ~eps:1e-4 "d_avg anchor" 1.7333 (Params.d_avg default)

let test_params_validation () =
  let bad p = Alcotest.(check bool) "invalid" true (Result.is_error (Params.validate p)) in
  bad { default with Params.k = 0 };
  bad { default with Params.n_t = -1 };
  bad { default with Params.runlength = 0. };
  bad { default with Params.context_switch = -1. };
  bad { default with Params.p_remote = 1.5 };
  bad { default with Params.p_remote = -0.1 };
  bad { default with Params.l_mem = -1. };
  bad { default with Params.s_switch = -1. };
  bad { default with Params.pattern = Access.Geometric 0. };
  bad { default with Params.k = 1 } (* p_remote > 0 on one node *);
  Alcotest.(check bool) "default valid" true (Result.is_ok (Params.validate default));
  Alcotest.(check bool) "k=1 local-only valid" true
    (Result.is_ok (Params.validate { default with Params.k = 1; p_remote = 0. }))

(* ------------------------------------------------------------------ *)
(* Visit ratios / network construction *)

let test_visit_ratios_structure () =
  let p = default in
  let n = Params.num_processors p in
  let v = Mms.class_visits p ~cls:0 in
  close "one processor visit" 1. v.(Mms.processor_station p ~node:0);
  (* memory visits sum to 1 (every cycle makes one access) *)
  let mem_sum = ref 0. in
  for node = 0 to n - 1 do
    mem_sum := !mem_sum +. v.(Mms.memory_station p ~node)
  done;
  close "memory visits sum to 1" 1. !mem_sum;
  close "local memory visit" (1. -. p.Params.p_remote)
    v.(Mms.memory_station p ~node:0);
  (* no other processor is ever visited *)
  for node = 1 to n - 1 do
    close "foreign processor unvisited" 0. v.(Mms.processor_station p ~node)
  done

let test_visit_ratios_round_trip_identity () =
  (* Total switch visits per cycle must equal p_remote * 2 (d_avg + 1):
     each remote round trip crosses 2 outbound and 2 h inbound switches. *)
  let check_for p =
    let n = Params.num_processors p in
    let v = Mms.class_visits p ~cls:0 in
    let switch_sum = ref 0. in
    for node = 0 to n - 1 do
      switch_sum :=
        !switch_sum
        +. v.(Mms.inbound_station p ~node)
        +. v.(Mms.outbound_station p ~node)
    done;
    let d_avg = Params.d_avg p in
    close ~eps:1e-9 "2 p_remote (d_avg + 1)"
      (2. *. p.Params.p_remote *. (d_avg +. 1.))
      !switch_sum
  in
  check_for default;
  check_for { default with Params.p_remote = 0.9; pattern = Access.Uniform };
  check_for { default with Params.k = 5; pattern = Access.Geometric 0.3 }

let test_outbound_visits () =
  let p = default in
  let v = Mms.class_visits p ~cls:0 in
  (* Own outbound switch carries every remote request once. *)
  let access = Params.make_access p in
  let own = v.(Mms.outbound_station p ~node:0) in
  (* own outbound = p_remote (requests) + em_{0,0 responses}? responses
     leave through remote outbound switches, so own = p_remote only. *)
  close "own outbound = p_remote" p.Params.p_remote own;
  (* Remote outbound switch at node j carries that flow's responses. *)
  close "remote outbound = em"
    (Access.prob access ~src:0 ~dst:5)
    v.(Mms.outbound_station p ~node:5)

let test_network_construction () =
  let p = { default with Params.k = 2; n_t = 3 } in
  let nw = Mms.build_network p in
  Alcotest.(check int) "stations" (4 * 4) (Network.num_stations nw);
  Alcotest.(check int) "classes" 4 (Network.num_classes nw);
  Alcotest.(check int) "population" 3 (Network.population nw 1)

(* ------------------------------------------------------------------ *)
(* Solvers *)

let test_symmetric_matches_general_amva () =
  List.iter
    (fun p ->
      let s = Mms.solve ~solver:Mms.Symmetric_amva p in
      let g = Mms.solve ~solver:Mms.General_amva p in
      close ~eps:1e-5 "U_p" g.Measures.u_p s.Measures.u_p;
      close ~eps:1e-4 "S_obs" g.Measures.s_obs s.Measures.s_obs;
      close ~eps:1e-4 "L_obs" g.Measures.l_obs s.Measures.l_obs)
    [
      { default with Params.k = 2; n_t = 3 };
      { default with Params.k = 3; n_t = 5; p_remote = 0.6 };
      { default with Params.k = 4; n_t = 8; pattern = Access.Uniform };
    ]

let test_amva_close_to_exact_mms () =
  (* Tiny MMS where exact multi-class MVA is feasible. *)
  let p = { default with Params.k = 2; n_t = 2; p_remote = 0.5 } in
  let approx = Mms.solve ~solver:Mms.Symmetric_amva p in
  let exact = Mms.solve ~solver:Mms.Exact_mva p in
  let err = abs_float (approx.Measures.u_p -. exact.Measures.u_p) /. exact.Measures.u_p in
  if err > 0.05 then Alcotest.failf "AMVA error %g > 5%%" err

let test_measures_consistency () =
  let m = Mms.solve default in
  close ~eps:1e-9 "lambda_net = lambda * p_remote"
    (m.Measures.lambda *. default.Params.p_remote)
    m.Measures.lambda_net;
  close ~eps:1e-9 "U_p = lambda * R"
    (m.Measures.lambda *. Params.processor_occupancy default)
    m.Measures.u_p;
  (* Little's law on the cycle: n_t = lambda * cycle_time *)
  close ~eps:1e-6 "Little" (float_of_int default.Params.n_t)
    (m.Measures.lambda *. m.Measures.cycle_time);
  Alcotest.(check bool) "converged" true m.Measures.converged;
  Alcotest.(check bool) "U_p in range" true (m.Measures.u_p > 0. && m.Measures.u_p <= 1.)

let test_zero_threads () =
  let m = Mms.solve { default with Params.n_t = 0 } in
  close "U_p" 0. m.Measures.u_p;
  close "lambda" 0. m.Measures.lambda

let test_zero_remote_reduces_to_repairman () =
  (* p_remote = 0: each node is an independent processor-memory loop. *)
  let p = { default with Params.p_remote = 0.; n_t = 8 } in
  let m = Mms.solve p in
  (* Balanced two-station closed network, D = R = L = 1:
     X(N) = N / (N + 1) under AMVA?  AMVA is not exact here; compare to the
     general AMVA instead and to the exact value within tolerance. *)
  let nw =
    Network.make
      ~stations:[| ("p", Network.Queueing); ("m", Network.Queueing) |]
      ~classes:
        [|
          {
            Network.class_name = "t";
            population = 8;
            visits = [| 1.; 1. |];
            service = [| 1.; 1. |];
          };
        |]
  in
  let x = (Amva.solve nw).Solution.throughput.(0) in
  close ~eps:1e-6 "same as two-station AMVA" x m.Measures.u_p;
  Alcotest.(check bool) "s_obs undefined" true (Float.is_nan m.Measures.s_obs)

let test_ideal_subsystems_zero_latency () =
  let m = Mms.solve { default with Params.s_switch = 0. } in
  close ~eps:1e-9 "S_obs = 0 under ideal network" 0. m.Measures.s_obs;
  let m2 = Mms.solve { default with Params.l_mem = 0. } in
  close ~eps:1e-9 "L_obs = 0 under ideal memory" 0. m2.Measures.l_obs

let test_lambda_net_below_saturation () =
  (* Eq. 4 is an upper bound the model must respect at any load. *)
  let sat = Bottleneck.lambda_net_saturation default in
  List.iter
    (fun pr ->
      List.iter
        (fun nt ->
          let m = Mms.solve { default with Params.p_remote = pr; n_t = nt } in
          if m.Measures.lambda_net > sat +. 1e-6 then
            Alcotest.failf "lambda_net %g above saturation %g (pr=%g nt=%d)"
              m.Measures.lambda_net sat pr nt)
        [ 1; 4; 8; 10 ])
    [ 0.2; 0.5; 0.9 ]

let test_context_switch_overhead () =
  (* Adding context-switch time must not increase throughput. *)
  let base = Mms.solve default in
  let slower = Mms.solve { default with Params.context_switch = 0.5 } in
  Alcotest.(check bool) "lambda drops" true
    (slower.Measures.lambda < base.Measures.lambda)

let test_mesh_uses_general_solver () =
  let p = { default with Params.topology = Topology.Mesh; k = 2 } in
  let m = Mms.solve p in
  Alcotest.(check bool) "solves" true (m.Measures.u_p > 0.);
  Alcotest.(check bool) "symmetric solver refused" true
    (try
       ignore (Mms.solve ~solver:Mms.Symmetric_amva p);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Tolerance *)

let test_zone_boundaries () =
  Alcotest.(check bool) "0.9 tolerated" true
    (Tolerance.zone_of_index 0.9 = Tolerance.Tolerated);
  Alcotest.(check bool) "0.8 tolerated" true
    (Tolerance.zone_of_index 0.8 = Tolerance.Tolerated);
  Alcotest.(check bool) "0.65 partial" true
    (Tolerance.zone_of_index 0.65 = Tolerance.Partially_tolerated);
  Alcotest.(check bool) "0.3 not" true
    (Tolerance.zone_of_index 0.3 = Tolerance.Not_tolerated)

let test_paper_tolerance_anchors () =
  (* Paper Section 5 (R = 1, p_remote = 0.2, zero-remote ideal):
     tol_network = 0.86 at n_t = 5 and 0.9219 at n_t = 8. *)
  let r5 = Tolerance.network { default with Params.n_t = 5 } in
  close ~eps:5e-3 "n_t = 5 anchor" 0.8635 r5.Tolerance.tol;
  let r8 = Tolerance.network { default with Params.n_t = 8 } in
  close ~eps:5e-3 "n_t = 8 anchor" 0.9219 r8.Tolerance.tol;
  Alcotest.(check bool) "tolerated zone" true (r8.Tolerance.zone = Tolerance.Tolerated)

let test_ideal_params () =
  let p = default in
  let zd = Tolerance.ideal_params Tolerance.Network_latency Tolerance.Zero_delay p in
  close "S = 0" 0. zd.Params.s_switch;
  let zr = Tolerance.ideal_params Tolerance.Network_latency Tolerance.Zero_remote p in
  close "p_remote = 0" 0. zr.Params.p_remote;
  let md = Tolerance.ideal_params Tolerance.Memory_latency Tolerance.Zero_delay p in
  close "L = 0" 0. md.Params.l_mem;
  Alcotest.(check bool) "memory+zero_remote rejected" true
    (try
       ignore (Tolerance.ideal_params Tolerance.Memory_latency Tolerance.Zero_remote p);
       false
     with Invalid_argument _ -> true)

let test_tolerance_decreases_with_p_remote () =
  let tol pr = (Tolerance.network { default with Params.p_remote = pr }).Tolerance.tol in
  Alcotest.(check bool) "monotone down" true
    (tol 0.1 > tol 0.3 && tol 0.3 > tol 0.6 && tol 0.6 > tol 0.9)

let test_tolerance_improves_with_runlength () =
  (* Paper: increasing R improves tol_network. *)
  let tol r =
    (Tolerance.network { default with Params.runlength = r; p_remote = 0.4 }).Tolerance.tol
  in
  Alcotest.(check bool) "R=2 beats R=1" true (tol 2. > tol 1.)

let test_memory_tolerance_saturates () =
  (* Paper Section 6: for R >= 2, n_t >= 6, tol_memory ~ 1. *)
  let r = Tolerance.memory { default with Params.runlength = 2.; n_t = 6 } in
  Alcotest.(check bool) "tol_memory ~ 1" true (r.Tolerance.tol > 0.9);
  (* and L = 2 with R = 1 is poorly tolerated *)
  let bad = Tolerance.memory { default with Params.l_mem = 2.; runlength = 1. } in
  Alcotest.(check bool) "worse with L = 2" true (bad.Tolerance.tol < r.Tolerance.tol)

let test_threads_needed () =
  (* The paper: 5-8 threads tolerate the network, independent of k. *)
  List.iter
    (fun k ->
      match
        Tolerance.threads_needed Tolerance.Network_latency
          { default with Params.k }
      with
      | Some nt ->
        if nt < 2 || nt > 8 then
          Alcotest.failf "k=%d needs n_t=%d, expected 2..8" k nt
      | None -> Alcotest.failf "k=%d: no tolerable thread count" k)
    [ 2; 4; 6 ];
  (* an intolerable configuration returns None *)
  Alcotest.(check (option int)) "saturated network" None
    (Tolerance.threads_needed ~max_threads:10 Tolerance.Network_latency
       { default with Params.p_remote = 0.9 });
  Alcotest.(check bool) "bad target" true
    (try
       ignore
         (Tolerance.threads_needed ~target:0. Tolerance.Network_latency default);
       false
     with Invalid_argument _ -> true)

let test_zero_delay_tolerance_bounded () =
  (* Against a zero-delay ideal of the same workload, product-form
     throughput is monotone: tol <= 1 (+ small AMVA slack). *)
  List.iter
    (fun p ->
      let r = Tolerance.network ~ideal_method:Tolerance.Zero_delay p in
      if r.Tolerance.tol > 1.02 then
        Alcotest.failf "zero-delay tolerance %g > 1" r.Tolerance.tol)
    [
      default;
      { default with Params.k = 8; n_t = 10 };
      { default with Params.p_remote = 0.7; runlength = 2. };
    ]

(* ------------------------------------------------------------------ *)
(* Bottleneck (Eqs. 4 and 5) *)

let test_eq4_saturation_anchor () =
  (* 1 / (2 * 1.7333 * 1) = 0.2885 — the paper's 0.29. *)
  close ~eps:1e-3 "lambda_net saturation" 0.2885
    (Bottleneck.lambda_net_saturation default)

let test_eq5_critical_anchors () =
  (* Paper: critical p_remote = 0.18 at R = 1 and 0.68 at R = 2. *)
  close ~eps:5e-3 "R = 1" 0.183 (Bottleneck.p_remote_critical default);
  close ~eps:5e-3 "R = 2" 0.683
    (Bottleneck.p_remote_critical { default with Params.runlength = 2. })

let test_saturation_p_remote_anchors () =
  (* lambda_net saturates at p_remote ~ 0.29 R (0.3 and 0.6 in the text). *)
  let b1 = Bottleneck.analyze default in
  close ~eps:1e-2 "R = 1 saturation" 0.288 b1.Bottleneck.p_remote_saturation;
  let b2 = Bottleneck.analyze { default with Params.runlength = 2. } in
  close ~eps:1e-2 "R = 2 saturation" 0.577 b2.Bottleneck.p_remote_saturation

let test_bottleneck_ideal_cases () =
  let b = Bottleneck.analyze { default with Params.s_switch = 0. } in
  Alcotest.(check bool) "infinite saturation" true
    (b.Bottleneck.lambda_net_saturation = infinity);
  close "critical 1" 1. b.Bottleneck.p_remote_critical;
  let bm = Bottleneck.analyze { default with Params.l_mem = 0. } in
  close "memory cap 1" 1. bm.Bottleneck.memory_bound_u_p

let test_model_knee_matches_eq5 () =
  (* Below the Eq. 5 critical point the processor stays close to fully
     utilized; well past it, utilization has fallen substantially (R = 2
     case, where the knee is interior at p* = 0.683). *)
  let p = { default with Params.runlength = 2.; n_t = 8 } in
  let u pr = (Mms.solve { p with Params.p_remote = pr }).Measures.u_p in
  let crit = Bottleneck.p_remote_critical p in
  Alcotest.(check bool) "high well below knee" true (u (crit /. 2.) > 0.9);
  Alcotest.(check bool) "substantial drop past knee" true
    (u (Float.min 1. (crit +. 0.3)) < u crit -. 0.08)

let test_open_view_matches_eq4 () =
  (* The inbound switches saturate exactly where Eq. 4 says. *)
  let p = default in
  let sat_lambda = Bottleneck.lambda_net_saturation p /. p.Params.p_remote in
  let v_below = Bottleneck.open_view p ~lambda:(sat_lambda *. 0.98) in
  let v_above = Bottleneck.open_view p ~lambda:(sat_lambda *. 1.02) in
  Alcotest.(check bool) "inbound below 1" true (v_below.Bottleneck.util_switch_in < 1.);
  Alcotest.(check bool) "inbound above 1" true (v_above.Bottleneck.util_switch_in > 1.);
  (* memory saturates at lambda = 1/L regardless *)
  let v_mem = Bottleneck.open_view p ~lambda:1.01 in
  Alcotest.(check bool) "memory saturated" false v_mem.Bottleneck.stable

let test_open_view_unloaded_limit () =
  (* As lambda -> 0 the open latencies approach the unloaded values. *)
  let v = Bottleneck.open_view default ~lambda:1e-6 in
  close ~eps:1e-3 "L -> L" 1. v.Bottleneck.l_obs_open;
  let d_avg = (Bottleneck.analyze default).Bottleneck.d_avg in
  close ~eps:1e-3 "S -> (d_avg + 1) S" (d_avg +. 1.) v.Bottleneck.s_obs_open

let test_open_view_closed_model_consistency () =
  (* At the closed model's operating point, the open-view latencies should
     be in the same ballpark (the closed model sees less variance, so open
     estimates are upper-ish). *)
  let m = Mms.solve default in
  let v = Bottleneck.open_view default ~lambda:m.Measures.lambda in
  Alcotest.(check bool) "stable at operating point" true v.Bottleneck.stable;
  Alcotest.(check bool) "same order of magnitude" true
    (v.Bottleneck.l_obs_open > m.Measures.l_obs /. 3.
    && v.Bottleneck.l_obs_open < m.Measures.l_obs *. 3.)

let test_open_view_ideal_subsystems () =
  let v = Bottleneck.open_view { default with Params.s_switch = 0. } ~lambda:0.5 in
  close "no network latency" 0. v.Bottleneck.s_obs_open;
  let vm = Bottleneck.open_view { default with Params.l_mem = 0. } ~lambda:0.5 in
  close "no memory latency" 0. vm.Bottleneck.l_obs_open

(* ------------------------------------------------------------------ *)
(* Partitioning *)

let test_partitioning_sweep () =
  let points = Partitioning.sweep default ~work:8. ~n_ts:[ 1; 2; 4; 8 ] in
  Alcotest.(check int) "4 points" 4 (List.length points);
  List.iter
    (fun pt ->
      close ~eps:1e-9 "work conserved" 8. pt.Partitioning.work;
      Alcotest.(check bool) "valid U_p" true
        (pt.Partitioning.measures.Measures.u_p > 0.))
    points

let test_partitioning_prefers_runlength () =
  (* Paper: for n_t x R constant, high R with n_t > 1 tolerates best. *)
  let points =
    Partitioning.sweep
      { default with Params.p_remote = 0.4 }
      ~work:8. ~n_ts:[ 1; 2; 4; 8 ]
  in
  let best = Partitioning.best points in
  Alcotest.(check bool) "best is a few long threads" true
    (best.Partitioning.n_t = 2 || best.Partitioning.n_t = 4);
  (* n_t = 1 is worse than n_t = 2: no overlap at all *)
  let find n = List.find (fun pt -> pt.Partitioning.n_t = n) points in
  Alcotest.(check bool) "n_t=2 beats n_t=1" true
    ((find 2).Partitioning.measures.Measures.u_p
    > (find 1).Partitioning.measures.Measures.u_p)

let test_partitioning_validation () =
  Alcotest.(check bool) "bad n_t" true
    (try
       ignore (Partitioning.evaluate default ~n_t:0 ~runlength:1.);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad work" true
    (try
       ignore (Partitioning.sweep default ~work:0. ~n_ts:[ 1 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty best" true
    (try
       ignore (Partitioning.best []);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Scaling *)

let test_scaling_geometric_beats_uniform () =
  (* Paper Section 7: at scale, geometric wins; at k = 2 they coincide. *)
  let geo k = Scaling.evaluate default ~k (Access.Geometric 0.5) in
  let uni k = Scaling.evaluate default ~k Access.Uniform in
  close ~eps:1e-6 "coincide at k=2" (geo 2).Scaling.tol_network
    (uni 2).Scaling.tol_network;
  Alcotest.(check bool) "geometric wins at k=8" true
    ((geo 8).Scaling.tol_network > (uni 8).Scaling.tol_network +. 0.2);
  Alcotest.(check bool) "uniform degrades with k" true
    ((uni 8).Scaling.tol_network < (uni 4).Scaling.tol_network)

let test_scaling_throughput_near_linear_geometric () =
  let pt k = Scaling.evaluate default ~k (Access.Geometric 0.5) in
  let t4 = (pt 4).Scaling.throughput and t8 = (pt 8).Scaling.throughput in
  (* quadrupling P should nearly quadruple throughput under locality *)
  Alcotest.(check bool) "superlinear in P? no; near-linear" true
    (t8 /. t4 > 3.5 && t8 /. t4 < 4.5)

let test_scaling_ideal_network_memory_contention () =
  (* The paper's Figure 10(b) mechanism: the zero-delay network suffers
     higher memory latency than the finite-delay geometric system. *)
  let pt = Scaling.evaluate default ~k:8 (Access.Geometric 0.5) in
  Alcotest.(check bool) "ideal L_obs above real L_obs" true
    (pt.Scaling.ideal_network.Measures.l_obs > pt.Scaling.measures.Measures.l_obs)

let test_scaling_sweep_shape () =
  let points =
    Scaling.sweep default ~ks:[ 2; 4 ] ~patterns:[ Access.Geometric 0.5; Access.Uniform ]
  in
  Alcotest.(check int) "4 points" 4 (List.length points);
  match points with
  | first :: _ ->
    Alcotest.(check int) "ordered by k" 2 first.Scaling.k;
    Alcotest.(check int) "P = k^2" 4 first.Scaling.num_processors
  | [] -> Alcotest.fail "empty sweep"

(* ------------------------------------------------------------------ *)
(* Network dimensionality *)

let test_dimensions_processor_count () =
  Alcotest.(check int) "ring" 8
    (Params.num_processors { default with Params.k = 8; dimensions = 1 });
  Alcotest.(check int) "cube" 64
    (Params.num_processors { default with Params.k = 4; dimensions = 3 })

let test_dimensions_symmetric_matches_general () =
  List.iter
    (fun (k, d) ->
      let p =
        { default with Params.k; dimensions = d; n_t = 3; p_remote = 0.4 }
      in
      let s = Mms.solve ~solver:Mms.Symmetric_amva p in
      let g = Mms.solve ~solver:Mms.General_amva p in
      close ~eps:1e-5 "U_p" g.Measures.u_p s.Measures.u_p)
    [ (6, 1); (3, 3) ]

let test_dimensions_ablation_order () =
  (* At equal P = 64 under a uniform pattern, higher dimensionality means
     shorter average routes and better utilization. *)
  let u (k, d) =
    (Mms.solve
       { default with Params.k; dimensions = d; p_remote = 0.4;
         pattern = Access.Uniform })
      .Measures.u_p
  in
  let ring = u (64, 1) and square = u (8, 2) and cube = u (4, 3) in
  Alcotest.(check bool) "cube > square > ring" true
    (cube > square && square > ring)

let test_linearizer_solver_close_to_exact () =
  let p = { default with Params.k = 2; n_t = 2; p_remote = 0.5 } in
  let lin = Mms.solve ~solver:Mms.Linearizer_amva p in
  let exact = Mms.solve ~solver:Mms.Exact_mva p in
  let err = abs_float (lin.Measures.u_p -. exact.Measures.u_p) /. exact.Measures.u_p in
  if err > 0.005 then Alcotest.failf "Linearizer MMS error %g > 0.5%%" err

(* ------------------------------------------------------------------ *)
(* Memory multiporting *)

let test_mem_ports_improves_contended_memory () =
  (* R = L = 1 makes the memory the joint bottleneck; a second port must
     raise U_p and collapse L_obs. *)
  let base = Mms.solve default in
  let dual = Mms.solve { default with Params.mem_ports = 2 } in
  Alcotest.(check bool) "U_p improves" true
    (dual.Measures.u_p > base.Measures.u_p +. 0.05);
  Alcotest.(check bool) "L_obs collapses" true
    (dual.Measures.l_obs < base.Measures.l_obs /. 2.)

let test_mem_ports_cross_validation () =
  (* Model vs DES on a small multiported machine. *)
  let p = { default with Params.k = 2; n_t = 4; p_remote = 0.5; mem_ports = 2 } in
  let model = Mms.solve p in
  let sim =
    (Lattol_sim.Mms_des.run
       ~config:
         { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 50_000. }
       p)
      .Lattol_sim.Mms_des.measures
  in
  let rel a b = abs_float (a -. b) /. b in
  if rel model.Measures.u_p sim.Measures.u_p > 0.05 then
    Alcotest.failf "multiport model %g vs DES %g" model.Measures.u_p
      sim.Measures.u_p

let test_mem_ports_validation () =
  Alcotest.(check bool) "0 ports rejected" true
    (Result.is_error (Params.validate { default with Params.mem_ports = 0 }))

(* ------------------------------------------------------------------ *)
(* Workload: do-all loops and data distributions *)

let test_workload_owner () =
  let loop =
    { Workload.elements = 16; distribution = Workload.Block;
      stencil = [ 0 ]; work_per_access = 1. }
  in
  Alcotest.(check int) "block first" 0
    (Workload.owner loop ~num_processors:4 ~element:0);
  Alcotest.(check int) "block last" 3
    (Workload.owner loop ~num_processors:4 ~element:15);
  let cyc = { loop with Workload.distribution = Workload.Cyclic } in
  Alcotest.(check int) "cyclic" 2 (Workload.owner cyc ~num_processors:4 ~element:6);
  let bc = { loop with Workload.distribution = Workload.Block_cyclic 2 } in
  Alcotest.(check int) "block-cyclic" 3
    (Workload.owner bc ~num_processors:4 ~element:6);
  (* wraparound *)
  Alcotest.(check int) "negative wraps" 3
    (Workload.owner cyc ~num_processors:4 ~element:(-1))

let test_workload_matrix_stochastic () =
  let topo = Params.make_topology default in
  List.iter
    (fun distribution ->
      let loop =
        { Workload.elements = 4096; distribution; stencil = [ -1; 0; 1 ];
          work_per_access = 1. }
      in
      let m = Workload.access_matrix loop topo in
      Array.iter
        (fun row ->
          close ~eps:1e-9 "row stochastic" 1. (Array.fold_left ( +. ) 0. row))
        m)
    [ Workload.Block; Workload.Cyclic; Workload.Block_cyclic 8 ]

let test_workload_block_mostly_local () =
  let topo = Params.make_topology default in
  let loop =
    { Workload.elements = 4096; distribution = Workload.Block;
      stencil = [ -1; 0; 1 ]; work_per_access = 1. }
  in
  let ch = Workload.characterize loop topo in
  (* halo exchanges: 2 boundary accesses per chunk of 256*3 accesses *)
  Alcotest.(check bool) "tiny remote fraction" true
    (ch.Workload.p_remote_mean < 0.01);
  let cyc = Workload.characterize { loop with Workload.distribution = Workload.Cyclic } topo in
  close ~eps:1e-9 "cyclic remote = 2/3" (2. /. 3.) cyc.Workload.p_remote_mean

let test_workload_ranking () =
  let results =
    Workload.compare_distributions ~base:default ~elements:4096
      ~stencil:[ -1; 0; 1 ] ~work_per_access:2.
      [ Workload.Block; Workload.Cyclic ]
  in
  match results with
  | [ (_, _, block_m, block_tol); (_, _, cyc_m, cyc_tol) ] ->
    Alcotest.(check bool) "block wins U_p" true
      (block_m.Measures.u_p > cyc_m.Measures.u_p);
    Alcotest.(check bool) "block wins tolerance" true (block_tol > cyc_tol)
  | _ -> Alcotest.fail "expected two results"

let test_workload_explicit_params_solve () =
  let loop =
    { Workload.elements = 1024; distribution = Workload.Cyclic;
      stencil = [ 0; 1 ]; work_per_access = 1.5 }
  in
  let p = Workload.to_params ~n_t:4 ~base:default loop in
  close "runlength adopted" 1.5 p.Params.runlength;
  let m = Mms.solve p in
  Alcotest.(check bool) "solves" true (m.Measures.u_p > 0. && m.Measures.u_p <= 1.);
  (* identity: lambda_net = lambda * remote fraction of node 0 *)
  let access = Params.make_access p in
  close ~eps:1e-9 "lambda_net identity"
    (m.Measures.lambda *. Lattol_topology.Access.remote_fraction access ~src:0)
    m.Measures.lambda_net

let test_workload_validation () =
  let invalid loop =
    Alcotest.(check bool) "rejected" true
      (Result.is_error (Workload.validate ~num_processors:16 loop))
  in
  invalid
    { Workload.elements = 8; distribution = Workload.Block; stencil = [ 0 ];
      work_per_access = 1. };
  invalid
    { Workload.elements = 64; distribution = Workload.Block; stencil = [];
      work_per_access = 1. };
  invalid
    { Workload.elements = 64; distribution = Workload.Block_cyclic 0;
      stencil = [ 0 ]; work_per_access = 1. };
  invalid
    { Workload.elements = 64; distribution = Workload.Block; stencil = [ 0 ];
      work_per_access = 0. }

(* ------------------------------------------------------------------ *)
(* 2-D grid workloads *)

let five_point = [ (0, 0); (-1, 0); (1, 0); (0, -1); (0, 1) ]

let test_grid_owner () =
  let base = default in
  let g =
    { Workload.Grid.rows = 64; cols = 64; decomposition = Workload.Grid.Blocks;
      stencil = five_point; work_per_access = 1. }
  in
  (* tile (0,0) -> node 0; tile (3,3) -> node 15 on the 4x4 torus *)
  Alcotest.(check int) "origin tile" 0
    (Workload.Grid.owner g ~base ~row:0 ~col:0);
  Alcotest.(check int) "far tile" 15
    (Workload.Grid.owner g ~base ~row:63 ~col:63);
  let rb = { g with Workload.Grid.decomposition = Workload.Grid.Row_blocks } in
  Alcotest.(check int) "row band" 15 (Workload.Grid.owner rb ~base ~row:63 ~col:0);
  let rc = { g with Workload.Grid.decomposition = Workload.Grid.Row_cyclic } in
  Alcotest.(check int) "row cyclic" 1 (Workload.Grid.owner rc ~base ~row:17 ~col:5)

let test_grid_blocks_perimeter () =
  (* 5-point stencil on 64x64 over 16 tiles of 16x16: remote accesses are
     the 4 x 16 border cells' outward reads over 5 x 256 accesses = 1/20. *)
  let g =
    { Workload.Grid.rows = 64; cols = 64; decomposition = Workload.Grid.Blocks;
      stencil = five_point; work_per_access = 1. }
  in
  let ch = Workload.Grid.characterize g ~base:default in
  close ~eps:1e-9 "p_remote = 0.05" 0.05 ch.Workload.p_remote_mean;
  close ~eps:1e-9 "all remote at distance 1" 1. ch.Workload.d_avg

let test_grid_decomposition_ranking () =
  let results =
    Workload.Grid.compare_decompositions ~base:default ~rows:64 ~cols:64
      ~stencil:five_point ~work_per_access:2.
      [ Workload.Grid.Blocks; Workload.Grid.Row_blocks; Workload.Grid.Row_cyclic ]
  in
  match List.map (fun (_, _, m, _) -> m.Measures.u_p) results with
  | [ blocks; rows; cyclic ] ->
    Alcotest.(check bool) "blocks > rows > cyclic" true
      (blocks > rows && rows > cyclic)
  | _ -> Alcotest.fail "expected three results"

let test_grid_validation () =
  let bad g =
    Alcotest.(check bool) "rejected" true
      (Result.is_error (Workload.Grid.validate ~base:default g))
  in
  bad
    { Workload.Grid.rows = 63; cols = 64; decomposition = Workload.Grid.Blocks;
      stencil = five_point; work_per_access = 1. };
  bad
    { Workload.Grid.rows = 60; cols = 64;
      decomposition = Workload.Grid.Row_blocks; stencil = five_point;
      work_per_access = 1. };
  bad
    { Workload.Grid.rows = 64; cols = 64; decomposition = Workload.Grid.Blocks;
      stencil = []; work_per_access = 1. };
  (* 2-D blocks on a ring rejected *)
  Alcotest.(check bool) "blocks need 2-D machine" true
    (Result.is_error
       (Workload.Grid.validate
          ~base:{ default with Params.k = 16; dimensions = 1 }
          { Workload.Grid.rows = 64; cols = 64;
            decomposition = Workload.Grid.Blocks; stencil = five_point;
            work_per_access = 1. }))

(* ------------------------------------------------------------------ *)
(* Cache contention (footnote 4) *)

let test_cache_hit_rate_model () =
  let c = Cache_effects.default in
  (* 4 x 256 = 1024 lines fit exactly: hit rate = 1 - floor. *)
  close ~eps:1e-9 "fits" 0.95 (Cache_effects.hit_rate c ~n_t:4);
  close ~eps:1e-9 "half resident" 0.475 (Cache_effects.hit_rate c ~n_t:8);
  Alcotest.(check bool) "monotone down" true
    (Cache_effects.hit_rate c ~n_t:2 >= Cache_effects.hit_rate c ~n_t:6)

let test_cache_interior_optimum () =
  (* Without contention U_p is monotone in n_t (property-tested above);
     with contention the best thread count is interior. *)
  let c = Cache_effects.default in
  let base = { default with Params.p_remote = 0.3 } in
  let best = Cache_effects.best_thread_count c ~base ~max_threads:16 in
  Alcotest.(check bool) "interior optimum" true
    (best.Cache_effects.n_t >= 2 && best.Cache_effects.n_t <= 6);
  (* and the contention-free fiction would keep climbing *)
  let free nt = (Mms.solve { base with Params.n_t = nt }).Measures.u_p in
  Alcotest.(check bool) "contention-free monotone" true (free 16 > free 4)

let test_cache_validation () =
  let bad c =
    Alcotest.(check bool) "rejected" true
      (Result.is_error (Cache_effects.validate c))
  in
  bad { Cache_effects.default with Cache_effects.cache_lines = 0 };
  bad { Cache_effects.default with Cache_effects.working_set = 0 };
  bad { Cache_effects.default with Cache_effects.miss_rate_floor = 0. };
  bad { Cache_effects.default with Cache_effects.cycles_per_access = 0. }

(* ------------------------------------------------------------------ *)
(* Sensitivity *)

let test_sensitivity_signs () =
  let ds = Sensitivity.analyze default in
  let find name = List.find (fun d -> d.Sensitivity.param = name) ds in
  Alcotest.(check bool) "more work helps" true
    ((find "runlength").Sensitivity.elasticity > 0.);
  Alcotest.(check bool) "slower memory hurts" true
    ((find "l_mem").Sensitivity.elasticity < 0.);
  Alcotest.(check bool) "slower switches hurt" true
    ((find "s_switch").Sensitivity.elasticity < 0.);
  Alcotest.(check bool) "more remote traffic hurts" true
    ((find "p_remote").Sensitivity.elasticity < 0.);
  Alcotest.(check bool) "more threads help" true
    ((find "n_t").Sensitivity.elasticity > 0.)

let test_sensitivity_ranked_order () =
  let ds = Sensitivity.ranked default in
  let rec monotone = function
    | a :: (b :: _ as rest) ->
      abs_float a.Sensitivity.elasticity >= abs_float b.Sensitivity.elasticity
      && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by |elasticity|" true (monotone ds);
  Alcotest.(check int) "six parameters at the default point" 6 (List.length ds)

let test_sensitivity_memory_dominates_at_balance () =
  (* At R = L = 1 the memory elasticity must outrank the switch one
     (tol_memory < tol_network at this point in the paper). *)
  let ds = Sensitivity.analyze default in
  let find name = List.find (fun d -> d.Sensitivity.param = name) ds in
  Alcotest.(check bool) "memory outranks network" true
    (abs_float (find "l_mem").Sensitivity.elasticity
    > abs_float (find "s_switch").Sensitivity.elasticity)

let test_sensitivity_validation () =
  Alcotest.(check bool) "bad step" true
    (try
       ignore (Sensitivity.analyze ~rel_step:0.9 default);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Synchronization unit (EARTH) *)

let test_su_zero_is_plain_machine () =
  Alcotest.(check int) "4 station types" 4 (Mms.stations_per_node default);
  Alcotest.(check int) "5 with SU" 5
    (Mms.stations_per_node { default with Params.sync_unit = 0.5 });
  let m = Mms.solve default in
  close "no SU utilization" 0. m.Measures.util_sync;
  close "no SU latency" 0. m.Measures.su_obs;
  Alcotest.(check bool) "sync_station raises without SU" true
    (try
       ignore (Mms.sync_station default ~node:0);
       false
     with Invalid_argument _ -> true)

let test_su_visit_identity () =
  (* Three SU touches per remote access: total SU visits = 3 p_remote. *)
  let p = { default with Params.sync_unit = 0.5 } in
  let v = Mms.class_visits p ~cls:0 in
  let n = Params.num_processors p in
  let su_sum = ref 0. in
  for node = 0 to n - 1 do
    su_sum := !su_sum +. v.(Mms.sync_station p ~node)
  done;
  close ~eps:1e-9 "3 p_remote" (3. *. p.Params.p_remote) !su_sum

let test_su_slows_machine () =
  let plain = Mms.solve default in
  let su = Mms.solve { default with Params.sync_unit = 0.5 } in
  Alcotest.(check bool) "SU adds delay" true (su.Measures.u_p < plain.Measures.u_p);
  Alcotest.(check bool) "SU utilization positive" true (su.Measures.util_sync > 0.)

let test_su_model_vs_des () =
  let p =
    { default with Params.k = 2; n_t = 4; p_remote = 0.5; sync_unit = 0.5 }
  in
  let model = Mms.solve p in
  let des =
    (Lattol_sim.Mms_des.run
       ~config:
         { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 40_000. }
       p)
      .Lattol_sim.Mms_des.measures
  in
  let rel a b = abs_float (a -. b) /. b in
  if rel model.Measures.u_p des.Measures.u_p > 0.05 then
    Alcotest.failf "SU machine: model %g vs DES %g" model.Measures.u_p
      des.Measures.u_p;
  if rel model.Measures.util_sync des.Measures.util_sync > 0.07 then
    Alcotest.failf "SU util: model %g vs DES %g" model.Measures.util_sync
      des.Measures.util_sync

let test_su_offload_beats_inline () =
  (* Equal handling work: on the processor it displaces computation; on the
     SU it overlaps.  Offload must win on useful throughput. *)
  let base = { default with Params.p_remote = 0.4 } in
  let h = 0.5 in
  let inline =
    Mms.solve
      { base with Params.context_switch = 2. *. h *. base.Params.p_remote }
  in
  let offload = Mms.solve { base with Params.sync_unit = h } in
  Alcotest.(check bool) "offload wins" true
    (offload.Measures.lambda > inline.Measures.lambda)

let test_su_symmetric_matches_general () =
  let p = { default with Params.k = 3; n_t = 3; sync_unit = 0.7; p_remote = 0.4 } in
  let s = Mms.solve ~solver:Mms.Symmetric_amva p in
  let g = Mms.solve ~solver:Mms.General_amva p in
  close ~eps:1e-5 "U_p" g.Measures.u_p s.Measures.u_p;
  close ~eps:1e-4 "su_obs" g.Measures.su_obs s.Measures.su_obs

(* ------------------------------------------------------------------ *)
(* Pipelined switches *)

let test_pipeline_raises_eq4_ceiling () =
  let ceiling d =
    (Bottleneck.analyze { default with Params.switch_pipeline = d })
      .Bottleneck.lambda_net_saturation
  in
  close ~eps:1e-9 "depth 2 doubles" (2. *. ceiling 1) (ceiling 2);
  close ~eps:1e-9 "depth 4 quadruples" (4. *. ceiling 1) (ceiling 4)

let test_pipeline_lifts_saturated_network () =
  let u depth =
    (Mms.solve
       { default with Params.switch_pipeline = depth; p_remote = 0.6; n_t = 8 })
      .Measures.u_p
  in
  Alcotest.(check bool) "deeper pipeline helps under saturation" true
    (u 2 > u 1 +. 0.2);
  (* but light traffic barely changes: unloaded latency is unchanged *)
  let light depth =
    (Mms.solve
       { default with Params.switch_pipeline = depth; p_remote = 0.1; n_t = 2 })
      .Measures.u_p
  in
  Alcotest.(check bool) "light traffic barely moves" true
    (light 4 -. light 1 < 0.05)

let test_pipeline_model_vs_des () =
  let p =
    { default with Params.k = 2; n_t = 4; p_remote = 0.5; switch_pipeline = 2 }
  in
  let model = Mms.solve p in
  let des =
    (Lattol_sim.Mms_des.run
       ~config:
         { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 40_000. }
       p)
      .Lattol_sim.Mms_des.measures
  in
  let rel a b = abs_float (a -. b) /. b in
  if rel model.Measures.u_p des.Measures.u_p > 0.05 then
    Alcotest.failf "pipelined: model %g vs DES %g" model.Measures.u_p
      des.Measures.u_p

let test_pipeline_validation () =
  Alcotest.(check bool) "depth 0 rejected" true
    (Result.is_error (Params.validate { default with Params.switch_pipeline = 0 }))

(* ------------------------------------------------------------------ *)
(* Heterogeneous workloads *)

let spmd_group =
  { Hetero.name = "spmd"; count = 8; runlength = 1.; p_remote = 0.2;
    pattern = Access.Geometric 0.5 }

let test_hetero_single_group_matches_homogeneous () =
  let homo = Mms.solve ~solver:Mms.General_amva default in
  let h = Hetero.solve ~base:default [ spmd_group ] in
  close ~eps:1e-9 "same U_p" homo.Measures.u_p h.Hetero.u_p;
  (match h.Hetero.groups with
  | [ g ] ->
    close ~eps:1e-9 "same lambda" homo.Measures.lambda g.Hetero.lambda;
    close ~eps:1e-6 "same S_obs" homo.Measures.s_obs g.Hetero.s_obs
  | _ -> Alcotest.fail "one group expected")

let test_hetero_interference () =
  let interactive =
    { Hetero.name = "i"; count = 2; runlength = 0.5; p_remote = 0.1;
      pattern = Access.Geometric 0.5 }
  in
  let batch =
    { Hetero.name = "b"; count = 6; runlength = 2.; p_remote = 0.5;
      pattern = Access.Uniform }
  in
  let alone = Hetero.solve ~base:default [ interactive ] in
  let mixed = Hetero.solve ~base:default [ interactive; batch ] in
  let s_alone = (List.hd alone.Hetero.groups).Hetero.s_obs in
  let s_mixed = (List.hd mixed.Hetero.groups).Hetero.s_obs in
  Alcotest.(check bool) "batch inflates interactive latency" true
    (s_mixed > s_alone *. 1.5);
  Alcotest.(check bool) "occupancies sum to U_p" true
    (abs_float
       (mixed.Hetero.u_p
       -. List.fold_left (fun a g -> a +. g.Hetero.occupancy) 0.
            mixed.Hetero.groups)
    < 1e-12)

let test_hetero_validation () =
  let invalid groups =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (Hetero.solve ~base:default groups);
         false
       with Invalid_argument _ -> true)
  in
  invalid [];
  invalid [ { spmd_group with Hetero.count = -1 } ];
  invalid [ { spmd_group with Hetero.runlength = 0. } ];
  invalid [ { spmd_group with Hetero.count = 0 } ]

(* ------------------------------------------------------------------ *)
(* Kernels *)

let test_kernel_matrices_stochastic () =
  let topo = Params.make_topology default in
  List.iter
    (fun kernel ->
      let m = Kernels.matrix kernel topo ~compute:0.5 in
      Array.iter
        (fun row ->
          close ~eps:1e-9 "row stochastic" 1. (Array.fold_left ( +. ) 0. row))
        m)
    (Kernels.all ~num_nodes:16)

let test_kernel_transpose_structure () =
  let topo = Params.make_topology default in
  let m = Kernels.matrix Kernels.Transpose topo ~compute:0.25 in
  (* diagonal nodes are purely local *)
  let diag = Lattol_topology.Topology.of_coords topo (2, 2) in
  close "diagonal local" 1. m.(diag).(diag);
  (* (1,3) talks to (3,1) with the remote mass *)
  let a = Lattol_topology.Topology.of_coords topo (1, 3) in
  let b = Lattol_topology.Topology.of_coords topo (3, 1) in
  close "partner mass" 0.75 m.(a).(b);
  close "self mass" 0.25 m.(a).(a)

let test_kernel_reduction_structure () =
  let topo = Params.make_topology default in
  let m = Kernels.matrix Kernels.Reduction topo ~compute:0.5 in
  close "root local" 1. m.(0).(0);
  close "node 5 -> 2" 0.5 m.(5).(2);
  close "node 1 -> 0" 0.5 m.(1).(0)

let test_kernel_butterfly_distance () =
  (* On the row-major 4x4 torus, xor 1 and xor 4 are physical neighbours;
     xor 2 is two hops.  The model must price them accordingly. *)
  let base = { default with Params.n_t = 4 } in
  let u stage =
    let p =
      Kernels.to_params ~base (Kernels.Butterfly stage) ~compute:0.6
        ~runlength:2.
    in
    (Mms.solve p).Measures.u_p
  in
  Alcotest.(check bool) "stage 0 (1 hop) beats stage 1 (2 hops)" true
    (u 0 > u 1);
  close ~eps:1e-6 "stage 0 = stage 2 by symmetry" (u 0) (u 2)

let test_kernel_validation () =
  let ring = Lattol_topology.Topology.create_nd Lattol_topology.Topology.Torus ~dims:[ 16 ] in
  Alcotest.(check bool) "transpose needs 2D" true
    (try
       ignore (Kernels.matrix Kernels.Transpose ring ~compute:0.5);
       false
     with Invalid_argument _ -> true);
  let topo = Params.make_topology default in
  Alcotest.(check bool) "bad compute fraction" true
    (try
       ignore (Kernels.matrix Kernels.All_to_all topo ~compute:1.5);
       false
     with Invalid_argument _ -> true)

let test_kernel_all_listing () =
  let ks = Kernels.all ~num_nodes:16 in
  (* 5 fixed kernels + butterfly stages 0..3 *)
  Alcotest.(check int) "nine kernels at P=16" 9 (List.length ks);
  Alcotest.(check bool) "ring shift included" true
    (List.mem Kernels.Ring_shift ks)

let test_kernel_ring_shift () =
  let ring = Lattol_topology.Topology.create_nd Lattol_topology.Topology.Torus ~dims:[ 8 ] in
  let m = Kernels.matrix Kernels.Ring_shift ring ~compute:0.5 in
  close "next neighbour" 0.5 m.(3).(4);
  close "wraps" 0.5 m.(7).(0);
  close "self" 0.5 m.(7).(7)

(* ------------------------------------------------------------------ *)
(* Optimizer *)

let test_optimizer_baseline_included () =
  let all = Optimizer.search ~base:default ~budget:0. (Optimizer.standard_upgrades ()) in
  (match all with
  | [ only ] ->
    Alcotest.(check (list string)) "baseline only" [] only.Optimizer.applied;
    close ~eps:1e-9 "baseline U_p" (Mms.solve default).Measures.u_p
      only.Optimizer.u_p
  | l -> Alcotest.failf "expected 1 configuration at zero budget, got %d"
           (List.length l))

let test_optimizer_monotone_in_budget () =
  let base = { default with Params.p_remote = 0.4 } in
  let u budget =
    (Optimizer.best ~base ~budget (Optimizer.standard_upgrades ())).Optimizer.u_p
  in
  Alcotest.(check bool) "more budget never hurts" true
    (u 0. <= u 4. && u 4. <= u 8.);
  Alcotest.(check bool) "budget helps at all" true (u 8. > u 0. +. 0.05)

let test_optimizer_respects_budget () =
  let base = { default with Params.p_remote = 0.4 } in
  List.iter
    (fun c ->
      if c.Optimizer.total_cost > 5. +. 1e-9 then
        Alcotest.failf "configuration over budget: %g" c.Optimizer.total_cost)
    (Optimizer.search ~base ~budget:5. (Optimizer.standard_upgrades ()))

let test_optimizer_validation () =
  Alcotest.(check bool) "negative budget" true
    (try
       ignore (Optimizer.search ~base:default ~budget:(-1.) []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "zero-cost upgrade" true
    (try
       ignore
         (Optimizer.search ~base:default ~budget:1.
            [ { Optimizer.description = "free"; cost = 0.; apply = Fun.id } ]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_verdicts () =
  let verdict p = (Report.analyze p).Report.verdict in
  Alcotest.(check bool) "compute bound when latencies tolerated" true
    (verdict { default with Params.runlength = 16.; p_remote = 0.05 }
    = Report.Compute_bound);
  Alcotest.(check bool) "network bound at high p_remote" true
    (verdict { default with Params.p_remote = 0.6 } = Report.Network_bound);
  Alcotest.(check bool) "memory bound at L = 2" true
    (verdict { default with Params.l_mem = 2.; p_remote = 0.05 }
    = Report.Memory_bound)

let test_report_contents () =
  let r = Report.analyze { default with Params.p_remote = 0.4 } in
  Alcotest.(check bool) "has recommendations" true
    (List.length r.Report.recommendations > 0);
  Alcotest.(check bool) "sensitivities ranked" true
    (List.length r.Report.sensitivities = 6);
  Alcotest.(check bool) "open view at operating rate" true
    (abs_float (r.Report.open_view.Bottleneck.lambda -. r.Report.measures.Measures.lambda)
    < 1e-12);
  (* report renders *)
  let text = Format.asprintf "%a" Report.pp r in
  Alcotest.(check bool) "renders" true (String.length text > 500)

let test_report_memory_recommends_ports () =
  let r = Report.analyze { default with Params.l_mem = 2.; p_remote = 0.05 } in
  Alcotest.(check bool) "suggests multiporting" true
    (List.exists
       (fun s -> Astring_contains.contains s "multiporting")
       r.Report.recommendations)

(* ------------------------------------------------------------------ *)
(* Golden values: catch silent numerical drift *)

let test_golden_default_solution () =
  let m = Mms.solve default in
  close ~eps:1e-6 "U_p" 0.819449 m.Measures.u_p;
  close ~eps:1e-6 "lambda_net" 0.163890 m.Measures.lambda_net;
  close ~eps:1e-4 "S_obs" 5.3879 m.Measures.s_obs;
  close ~eps:1e-4 "L_obs" 4.0737 m.Measures.l_obs

let test_golden_anchors () =
  close ~eps:1e-4 "d_avg" 1.7333 (Params.d_avg default);
  close ~eps:1e-4 "Eq.4" 0.2885 (Bottleneck.lambda_net_saturation default);
  close ~eps:1e-4 "Eq.5 R=1" 0.1830 (Bottleneck.p_remote_critical default);
  close ~eps:1e-4 "Eq.5 R=2" 0.6830
    (Bottleneck.p_remote_critical { default with Params.runlength = 2. });
  close ~eps:1e-4 "tol anchor n_t=8" 0.9219
    (Tolerance.network default).Tolerance.tol

let test_golden_exact_tiny () =
  let p = { default with Params.k = 2; n_t = 2; p_remote = 0.5 } in
  let e = Mms.solve ~solver:Mms.Exact_mva p in
  close ~eps:1e-6 "exact U_p (p_remote 0.5)" 0.330673 e.Measures.u_p;
  let e2 =
    Mms.solve ~solver:Mms.Exact_mva { default with Params.k = 2; n_t = 2 }
  in
  close ~eps:1e-6 "exact U_p (p_remote 0.2)" 0.506565 e2.Measures.u_p

(* ------------------------------------------------------------------ *)
(* Failure injection: iteration caps surface, never crash *)

let test_solver_cap_surfaces () =
  let m = Mms.solve ~max_iterations:2 default in
  Alcotest.(check bool) "flagged unconverged" false m.Measures.converged;
  Alcotest.(check bool) "still finite" true (Float.is_finite m.Measures.u_p);
  let g = Mms.solve ~solver:Mms.General_amva ~max_iterations:1 default in
  Alcotest.(check bool) "general flagged too" false g.Measures.converged;
  (* loose tolerance converges almost immediately *)
  let loose = Mms.solve ~tolerance:0.5 default in
  Alcotest.(check bool) "loose tolerance converges fast" true
    (loose.Measures.converged && loose.Measures.iterations < 10)

(* ------------------------------------------------------------------ *)
(* Hypercube machines through Params *)

let test_params_hypercube () =
  (* k = 2 in d dimensions is the binary d-cube. *)
  let p = { default with Params.k = 2; dimensions = 6; p_remote = 0.4 } in
  Alcotest.(check int) "64 nodes" 64 (Params.num_processors p);
  let topo = Params.make_topology p in
  Alcotest.(check int) "degree 6" 6
    (List.length (Lattol_topology.Topology.neighbours topo 0));
  let m = Mms.solve p in
  Alcotest.(check bool) "solves" true (m.Measures.u_p > 0.);
  (* hypercubes beat the ring at equal P under uniform traffic *)
  let ring =
    Mms.solve
      { default with Params.k = 64; dimensions = 1; p_remote = 0.4;
        pattern = Access.Uniform }
  in
  let cube =
    Mms.solve
      { default with Params.k = 2; dimensions = 6; p_remote = 0.4;
        pattern = Access.Uniform }
  in
  Alcotest.(check bool) "cube beats ring" true
    (cube.Measures.u_p > ring.Measures.u_p)

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_params =
  QCheck.make
    ~print:(fun (k, nt, r, pr) -> Printf.sprintf "k=%d nt=%d R=%g pr=%g" k nt r pr)
    QCheck.Gen.(
      quad (int_range 2 5) (int_range 1 10) (float_range 0.5 4.)
        (float_range 0. 1.))

let params_of (k, nt, r, pr) =
  { default with Params.k; n_t = nt; runlength = r; p_remote = pr }

let prop_u_p_in_unit_interval =
  QCheck.Test.make ~name:"U_p in (0, 1]" ~count:60 arb_params (fun spec ->
      let m = Mms.solve (params_of spec) in
      m.Measures.u_p > 0. && m.Measures.u_p <= 1. +. 1e-9)

let prop_measures_identities =
  QCheck.Test.make ~name:"lambda_net and U_p identities" ~count:60 arb_params
    (fun spec ->
      let p = params_of spec in
      let m = Mms.solve p in
      abs_float (m.Measures.lambda_net -. (m.Measures.lambda *. p.Params.p_remote))
      < 1e-9
      && abs_float (m.Measures.u_p -. (m.Measures.lambda *. p.Params.runlength))
         < 1e-9)

let prop_u_p_monotone_in_threads =
  QCheck.Test.make ~name:"U_p non-decreasing in n_t" ~count:30
    QCheck.(triple (int_range 2 4) (float_range 0.5 2.) (float_range 0.1 0.9))
    (fun (k, r, pr) ->
      let u nt =
        (Mms.solve { default with Params.k; n_t = nt; runlength = r; p_remote = pr })
          .Measures.u_p
      in
      u 2 <= u 4 +. 1e-6 && u 4 <= u 8 +. 1e-6)

let prop_tolerance_positive =
  QCheck.Test.make ~name:"tolerance index is positive and bounded" ~count:40
    arb_params (fun spec ->
      let r = Tolerance.network (params_of spec) in
      r.Tolerance.tol > 0. && r.Tolerance.tol <= 1.1)

let prop_critical_p_remote_in_range =
  QCheck.Test.make ~name:"critical p_remote in [0, 1]" ~count:60 arb_params
    (fun spec ->
      let b = Bottleneck.analyze (params_of spec) in
      b.Bottleneck.p_remote_critical >= 0. && b.Bottleneck.p_remote_critical <= 1.)

let prop_grid_rows_stochastic =
  QCheck.Test.make ~name:"grid access matrices are row-stochastic" ~count:30
    QCheck.(
      triple (int_range 0 2) (int_range 1 4)
        (list_of_size Gen.(int_range 1 5)
           (pair (int_range (-2) 2) (int_range (-2) 2))))
    (fun (deco, scale, stencil) ->
      let decomposition =
        match deco with
        | 0 -> Workload.Grid.Row_blocks
        | 1 -> Workload.Grid.Row_cyclic
        | _ -> Workload.Grid.Blocks
      in
      let g =
        { Workload.Grid.rows = 16 * scale; cols = 16; decomposition;
          stencil; work_per_access = 1. }
      in
      let m = Workload.Grid.access_matrix g ~base:default in
      Array.for_all
        (fun row ->
          abs_float (Array.fold_left ( +. ) 0. row -. 1.) < 1e-9)
        m)

let prop_cache_runlength_monotone =
  QCheck.Test.make ~name:"cache-adjusted runlength non-increasing in n_t"
    ~count:40
    QCheck.(
      triple (int_range 64 2048) (int_range 16 512) (float_range 0.01 0.5))
    (fun (lines, ws, floor) ->
      let c =
        { Cache_effects.cache_lines = lines; working_set = ws;
          miss_rate_floor = floor; cycles_per_access = 1. }
      in
      let ok = ref true in
      for nt = 1 to 15 do
        if
          Cache_effects.runlength c ~n_t:(nt + 1)
          > Cache_effects.runlength c ~n_t:nt +. 1e-9
        then ok := false
      done;
      !ok)

let test_random_cross_model () =
  (* A handful of random configurations: the analytical model must track
     the DES within a tolerance that accounts for AMVA error and
     simulation noise. *)
  let rng = Lattol_stats.Prng.create ~seed:2026 () in
  for _ = 1 to 5 do
    let k = 2 + Lattol_stats.Prng.int rng 2 in
    let n_t = 1 + Lattol_stats.Prng.int rng 6 in
    let p_remote = 0.1 +. (0.6 *. Lattol_stats.Prng.float rng) in
    let runlength = 0.5 +. (2. *. Lattol_stats.Prng.float rng) in
    let p = { default with Params.k; n_t; p_remote; runlength } in
    let model = Mms.solve p in
    let sim =
      (Lattol_sim.Mms_des.run
         ~config:
           { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 30_000. }
         p)
        .Lattol_sim.Mms_des.measures
    in
    let err = abs_float (model.Measures.u_p -. sim.Measures.u_p) /. sim.Measures.u_p in
    if err > 0.08 then
      Alcotest.failf "random config %a: model %g vs DES %g (err %.3f)"
        (fun ppf p -> Params.pp ppf p)
        p model.Measures.u_p sim.Measures.u_p err
  done

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lattol_core"
    [
      ( "params",
        [
          Alcotest.test_case "defaults" `Quick test_default_params;
          Alcotest.test_case "validation" `Quick test_params_validation;
        ] );
      ( "visit ratios",
        [
          Alcotest.test_case "structure" `Quick test_visit_ratios_structure;
          Alcotest.test_case "round-trip identity" `Quick
            test_visit_ratios_round_trip_identity;
          Alcotest.test_case "outbound" `Quick test_outbound_visits;
          Alcotest.test_case "network construction" `Quick test_network_construction;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "symmetric = general AMVA" `Quick
            test_symmetric_matches_general_amva;
          Alcotest.test_case "AMVA vs exact on tiny MMS" `Quick
            test_amva_close_to_exact_mms;
          Alcotest.test_case "measure identities" `Quick test_measures_consistency;
          Alcotest.test_case "zero threads" `Quick test_zero_threads;
          Alcotest.test_case "p_remote = 0 repairman" `Quick
            test_zero_remote_reduces_to_repairman;
          Alcotest.test_case "ideal subsystems" `Quick test_ideal_subsystems_zero_latency;
          Alcotest.test_case "lambda_net below Eq.4" `Quick
            test_lambda_net_below_saturation;
          Alcotest.test_case "context switch overhead" `Quick
            test_context_switch_overhead;
          Alcotest.test_case "mesh topology" `Quick test_mesh_uses_general_solver;
        ] );
      ( "tolerance",
        [
          Alcotest.test_case "zones" `Quick test_zone_boundaries;
          Alcotest.test_case "paper anchors" `Quick test_paper_tolerance_anchors;
          Alcotest.test_case "ideal params" `Quick test_ideal_params;
          Alcotest.test_case "monotone in p_remote" `Quick
            test_tolerance_decreases_with_p_remote;
          Alcotest.test_case "improves with R" `Quick
            test_tolerance_improves_with_runlength;
          Alcotest.test_case "memory tolerance" `Quick test_memory_tolerance_saturates;
          Alcotest.test_case "zero-delay bounded" `Quick
            test_zero_delay_tolerance_bounded;
          Alcotest.test_case "threads needed" `Quick test_threads_needed;
        ] );
      ( "bottleneck",
        [
          Alcotest.test_case "Eq.4 anchor 0.29" `Quick test_eq4_saturation_anchor;
          Alcotest.test_case "Eq.5 anchors 0.18/0.68" `Quick test_eq5_critical_anchors;
          Alcotest.test_case "saturation p_remote" `Quick
            test_saturation_p_remote_anchors;
          Alcotest.test_case "ideal cases" `Quick test_bottleneck_ideal_cases;
          Alcotest.test_case "model knee matches Eq.5" `Quick test_model_knee_matches_eq5;
          Alcotest.test_case "open view matches Eq.4" `Quick test_open_view_matches_eq4;
          Alcotest.test_case "open view unloaded limit" `Quick
            test_open_view_unloaded_limit;
          Alcotest.test_case "open view vs closed model" `Quick
            test_open_view_closed_model_consistency;
          Alcotest.test_case "open view ideal subsystems" `Quick
            test_open_view_ideal_subsystems;
        ] );
      ( "partitioning",
        [
          Alcotest.test_case "sweep" `Quick test_partitioning_sweep;
          Alcotest.test_case "prefers runlength" `Quick
            test_partitioning_prefers_runlength;
          Alcotest.test_case "validation" `Quick test_partitioning_validation;
        ] );
      ( "scaling",
        [
          Alcotest.test_case "geometric beats uniform" `Quick
            test_scaling_geometric_beats_uniform;
          Alcotest.test_case "near-linear throughput" `Quick
            test_scaling_throughput_near_linear_geometric;
          Alcotest.test_case "ideal-network memory contention" `Quick
            test_scaling_ideal_network_memory_contention;
          Alcotest.test_case "sweep shape" `Quick test_scaling_sweep_shape;
        ] );
      ( "dimensions",
        [
          Alcotest.test_case "processor count" `Quick test_dimensions_processor_count;
          Alcotest.test_case "symmetric = general (1D/3D)" `Quick
            test_dimensions_symmetric_matches_general;
          Alcotest.test_case "dimension ablation order" `Quick
            test_dimensions_ablation_order;
          Alcotest.test_case "Linearizer solver" `Quick
            test_linearizer_solver_close_to_exact;
        ] );
      ( "mem-ports",
        [
          Alcotest.test_case "improves contended memory" `Quick
            test_mem_ports_improves_contended_memory;
          Alcotest.test_case "cross-validation vs DES" `Slow
            test_mem_ports_cross_validation;
          Alcotest.test_case "validation" `Quick test_mem_ports_validation;
        ] );
      ( "workload",
        [
          Alcotest.test_case "owner map" `Quick test_workload_owner;
          Alcotest.test_case "matrix stochastic" `Quick
            test_workload_matrix_stochastic;
          Alcotest.test_case "block mostly local" `Quick
            test_workload_block_mostly_local;
          Alcotest.test_case "ranking" `Quick test_workload_ranking;
          Alcotest.test_case "explicit params solve" `Quick
            test_workload_explicit_params_solve;
          Alcotest.test_case "validation" `Quick test_workload_validation;
        ] );
      ( "grid",
        [
          Alcotest.test_case "owner map" `Quick test_grid_owner;
          Alcotest.test_case "blocks perimeter arithmetic" `Quick
            test_grid_blocks_perimeter;
          Alcotest.test_case "decomposition ranking" `Quick
            test_grid_decomposition_ranking;
          Alcotest.test_case "validation" `Quick test_grid_validation;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit-rate model" `Quick test_cache_hit_rate_model;
          Alcotest.test_case "interior optimum" `Quick test_cache_interior_optimum;
          Alcotest.test_case "validation" `Quick test_cache_validation;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "signs" `Quick test_sensitivity_signs;
          Alcotest.test_case "ranked order" `Quick test_sensitivity_ranked_order;
          Alcotest.test_case "memory dominates at balance" `Quick
            test_sensitivity_memory_dominates_at_balance;
          Alcotest.test_case "validation" `Quick test_sensitivity_validation;
        ] );
      ( "sync-unit",
        [
          Alcotest.test_case "absent by default" `Quick test_su_zero_is_plain_machine;
          Alcotest.test_case "visit identity" `Quick test_su_visit_identity;
          Alcotest.test_case "adds delay" `Quick test_su_slows_machine;
          Alcotest.test_case "model vs DES" `Slow test_su_model_vs_des;
          Alcotest.test_case "offload beats inline" `Quick
            test_su_offload_beats_inline;
          Alcotest.test_case "symmetric = general" `Quick
            test_su_symmetric_matches_general;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "Eq.4 ceiling scales" `Quick
            test_pipeline_raises_eq4_ceiling;
          Alcotest.test_case "lifts saturation" `Quick
            test_pipeline_lifts_saturated_network;
          Alcotest.test_case "model vs DES" `Slow test_pipeline_model_vs_des;
          Alcotest.test_case "validation" `Quick test_pipeline_validation;
        ] );
      ( "hetero",
        [
          Alcotest.test_case "single group = homogeneous" `Quick
            test_hetero_single_group_matches_homogeneous;
          Alcotest.test_case "interference" `Quick test_hetero_interference;
          Alcotest.test_case "validation" `Quick test_hetero_validation;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "matrices stochastic" `Quick
            test_kernel_matrices_stochastic;
          Alcotest.test_case "transpose structure" `Quick
            test_kernel_transpose_structure;
          Alcotest.test_case "reduction structure" `Quick
            test_kernel_reduction_structure;
          Alcotest.test_case "butterfly distance pricing" `Quick
            test_kernel_butterfly_distance;
          Alcotest.test_case "validation" `Quick test_kernel_validation;
          Alcotest.test_case "listing" `Quick test_kernel_all_listing;
          Alcotest.test_case "ring shift" `Quick test_kernel_ring_shift;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "baseline included" `Quick
            test_optimizer_baseline_included;
          Alcotest.test_case "monotone in budget" `Quick
            test_optimizer_monotone_in_budget;
          Alcotest.test_case "respects budget" `Quick test_optimizer_respects_budget;
          Alcotest.test_case "validation" `Quick test_optimizer_validation;
        ] );
      ( "report",
        [
          Alcotest.test_case "verdicts" `Quick test_report_verdicts;
          Alcotest.test_case "contents" `Quick test_report_contents;
          Alcotest.test_case "memory recommendation" `Quick
            test_report_memory_recommends_ports;
        ] );
      ( "golden",
        [
          Alcotest.test_case "default solution" `Quick test_golden_default_solution;
          Alcotest.test_case "paper anchors" `Quick test_golden_anchors;
          Alcotest.test_case "exact tiny" `Quick test_golden_exact_tiny;
        ] );
      ( "failure-injection",
        [ Alcotest.test_case "iteration caps surface" `Quick test_solver_cap_surfaces ]
      );
      ( "hypercube",
        [ Alcotest.test_case "binary cube via Params" `Quick test_params_hypercube ]
      );
      ( "cross-model",
        [ Alcotest.test_case "random configurations" `Slow test_random_cross_model ]
      );
      ( "properties",
        qcheck
          [
            prop_u_p_in_unit_interval;
            prop_measures_identities;
            prop_u_p_monotone_in_threads;
            prop_tolerance_positive;
            prop_critical_p_remote_in_range;
            prop_grid_rows_stochastic;
            prop_cache_runlength_monotone;
          ] );
    ]
