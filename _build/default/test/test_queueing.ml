(* Tests for the closed queueing network solvers: network construction,
   exact MVA, approximate MVA (the paper's Figure 3 algorithm), Buzen's
   convolution, and operational bounds.  The exact methods cross-validate
   each other; AMVA is held to its known accuracy envelope. *)

open Lattol_queueing

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let repairman ~n ~think ~repair =
  Network.make
    ~stations:[| ("think", Network.Delay); ("repair", Network.Queueing) |]
    ~classes:
      [|
        {
          Network.class_name = "jobs";
          population = n;
          visits = [| 1.; 1. |];
          service = [| think; repair |];
        };
      |]

let central_server ~n =
  Network.make
    ~stations:
      [|
        ("cpu", Network.Queueing); ("disk1", Network.Queueing);
        ("disk2", Network.Queueing);
      |]
    ~classes:
      [|
        {
          Network.class_name = "jobs";
          population = n;
          visits = [| 1.; 0.6; 0.4 |];
          service = [| 0.2; 0.5; 0.8 |];
        };
      |]

let two_class () =
  Network.make
    ~stations:[| ("cpu", Network.Queueing); ("disk", Network.Queueing) |]
    ~classes:
      [|
        {
          Network.class_name = "a";
          population = 3;
          visits = [| 1.; 2. |];
          service = [| 0.5; 0.4 |];
        };
        {
          Network.class_name = "b";
          population = 2;
          visits = [| 1.; 1. |];
          service = [| 0.5; 0.4 |];
        };
      |]

(* ------------------------------------------------------------------ *)
(* Network *)

let test_network_accessors () =
  let nw = central_server ~n:5 in
  Alcotest.(check int) "stations" 3 (Network.num_stations nw);
  Alcotest.(check int) "classes" 1 (Network.num_classes nw);
  Alcotest.(check string) "name" "disk1" (Network.station_name nw 1);
  close "demand" 0.3 (Network.demand nw ~cls:0 ~station:1);
  close "total demand" (0.2 +. 0.3 +. 0.32) (Network.total_demand nw ~cls:0);
  Alcotest.(check int) "bottleneck = disk2" 2 (Network.bottleneck nw ~cls:0);
  Alcotest.(check int) "population" 5 (Network.population nw 0);
  Alcotest.(check int) "total population" 5 (Network.total_population nw)

let test_network_validation () =
  let invalid f =
    Alcotest.(check bool) "raises" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  invalid (fun () -> Network.make ~stations:[||] ~classes:[||]);
  invalid (fun () ->
      Network.make
        ~stations:[| ("s", Network.Queueing) |]
        ~classes:
          [|
            {
              Network.class_name = "c";
              population = 1;
              visits = [| 1.; 2. |];
              service = [| 1. |];
            };
          |]);
  invalid (fun () ->
      Network.make
        ~stations:[| ("s", Network.Queueing) |]
        ~classes:
          [|
            {
              Network.class_name = "c";
              population = -1;
              visits = [| 1. |];
              service = [| 1. |];
            };
          |]);
  (* population but zero demand *)
  invalid (fun () ->
      Network.make
        ~stations:[| ("s", Network.Queueing) |]
        ~classes:
          [|
            {
              Network.class_name = "c";
              population = 2;
              visits = [| 0. |];
              service = [| 1. |];
            };
          |])

let test_with_population () =
  let nw = central_server ~n:5 in
  let nw2 = Network.with_population nw [| 9 |] in
  Alcotest.(check int) "new population" 9 (Network.population nw2 0);
  Alcotest.(check int) "original untouched" 5 (Network.population nw 0)

(* ------------------------------------------------------------------ *)
(* Exact MVA *)

let test_mva_single_customer () =
  (* With one customer there is no queueing: X = 1 / total demand. *)
  let nw = central_server ~n:1 in
  let s = Mva.solve nw in
  close "throughput" (1. /. Network.total_demand nw ~cls:0) s.Solution.throughput.(0)

let test_mva_repairman_closed_form () =
  (* M/M/1//N repairman has a known product-form solution; spot-check via
     the Erlang-like recursion X(N) = N / (Z + R(N)) ... using the CTMC in
     test_markov as the deep check, here we verify monotone saturation. *)
  let x n =
    (Mva.solve (repairman ~n ~think:5. ~repair:1.)).Solution.throughput.(0)
  in
  Alcotest.(check bool) "monotone" true (x 1 < x 2 && x 2 < x 4 && x 4 < x 8);
  Alcotest.(check bool) "capped by server" true (x 50 <= 1.0 +. 1e-9);
  close ~eps:1e-6 "N=1 exact" (1. /. 6.) (x 1)

let test_mva_matches_convolution () =
  List.iter
    (fun n ->
      let nw = central_server ~n in
      let a = Mva.solve nw and b = Convolution.solve nw in
      close ~eps:1e-9 "throughput" a.Solution.throughput.(0) b.Solution.throughput.(0);
      for m = 0 to 2 do
        close ~eps:1e-8 "queue" a.Solution.queue.(0).(m) b.Solution.queue.(0).(m)
      done)
    [ 1; 2; 5; 10; 20 ]

let test_mva_multiclass_littles_law () =
  let s = Mva.solve (two_class ()) in
  close ~eps:1e-12 "residual" 0. (Solution.littles_law_residual s)

let test_mva_state_cap () =
  let nw =
    Network.make
      ~stations:[| ("s", Network.Queueing) |]
      ~classes:
        (Array.init 10 (fun i ->
             {
               Network.class_name = Printf.sprintf "c%d" i;
               population = 10;
               visits = [| 1. |];
               service = [| 1. |];
             }))
  in
  Alcotest.(check bool) "raises cap" true
    (try
       ignore (Mva.solve nw);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "num_states large" true (Mva.num_states nw > 2_000_000)

let test_mva_delay_only () =
  (* Pure delay network: X = N / Z, no queueing anywhere. *)
  let nw =
    Network.make
      ~stations:[| ("z", Network.Delay) |]
      ~classes:
        [|
          {
            Network.class_name = "c";
            population = 7;
            visits = [| 1. |];
            service = [| 3.5 |];
          };
        |]
  in
  let s = Mva.solve nw in
  close "X = N/Z" 2. s.Solution.throughput.(0);
  close "queue = N" 7. s.Solution.queue.(0).(0)

(* ------------------------------------------------------------------ *)
(* AMVA *)

let test_amva_close_to_exact_single () =
  List.iter
    (fun n ->
      let nw = central_server ~n in
      let e = (Mva.solve nw).Solution.throughput.(0) in
      let a = (Amva.solve nw).Solution.throughput.(0) in
      if abs_float (a -. e) /. e > 0.05 then
        Alcotest.failf "AMVA off by more than 5%% at N=%d: %g vs %g" n a e)
    [ 1; 2; 5; 10; 30 ]

let test_amva_close_to_exact_multiclass () =
  let nw = two_class () in
  let e = Mva.solve nw and a = Amva.solve nw in
  for c = 0 to 1 do
    let err =
      abs_float (a.Solution.throughput.(c) -. e.Solution.throughput.(c))
      /. e.Solution.throughput.(c)
    in
    if err > 0.06 then Alcotest.failf "class %d error %g > 6%%" c err
  done

let test_amva_exact_at_n1 () =
  (* With a single customer the Schweitzer estimate is exact. *)
  let nw = central_server ~n:1 in
  close ~eps:1e-7 "N=1"
    (Mva.solve nw).Solution.throughput.(0)
    (Amva.solve nw).Solution.throughput.(0)

let test_amva_converges_flag () =
  let nw = central_server ~n:8 in
  let s = Amva.solve nw in
  Alcotest.(check bool) "converged" true s.Solution.converged;
  Alcotest.(check bool) "iterations > 1" true (s.Solution.iterations > 1)

let test_amva_iteration_cap () =
  let nw = central_server ~n:8 in
  let s =
    Amva.solve
      ~options:{ Amva.default_options with Amva.max_iterations = 2 }
      nw
  in
  Alcotest.(check bool) "not converged" false s.Solution.converged;
  Alcotest.(check int) "hit cap" 2 s.Solution.iterations

let test_amva_littles_law () =
  let s = Amva.solve (two_class ()) in
  close ~eps:1e-6 "residual" 0. (Solution.littles_law_residual s)

let test_amva_options_validated () =
  let nw = central_server ~n:2 in
  Alcotest.(check bool) "bad tolerance" true
    (try
       ignore
         (Amva.solve ~options:{ Amva.default_options with Amva.tolerance = 0. } nw);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "bad damping" true
    (try
       ignore
         (Amva.solve ~options:{ Amva.default_options with Amva.damping = 1. } nw);
       false
     with Invalid_argument _ -> true)

let test_amva_damping_same_fixed_point () =
  let nw = central_server ~n:10 in
  let plain = Amva.solve nw in
  let damped =
    Amva.solve ~options:{ Amva.default_options with Amva.damping = 0.5 } nw
  in
  close ~eps:1e-6 "same fixed point" plain.Solution.throughput.(0)
    damped.Solution.throughput.(0)

(* ------------------------------------------------------------------ *)
(* Convolution *)

let test_convolution_rejects_multiclass () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Convolution.solve (two_class ()));
       false
     with Invalid_argument _ -> true)

let test_convolution_normalizing_constants_positive () =
  let g = Convolution.normalizing_constants (central_server ~n:12) in
  Alcotest.(check int) "length" 13 (Array.length g);
  Array.iter (fun v -> Alcotest.(check bool) "positive" true (v > 0.)) g

let test_convolution_with_delay () =
  let nw = repairman ~n:6 ~think:4. ~repair:1.5 in
  let a = Mva.solve nw and b = Convolution.solve nw in
  close ~eps:1e-9 "throughput with delay station" a.Solution.throughput.(0)
    b.Solution.throughput.(0)

(* ------------------------------------------------------------------ *)
(* Solution / Bounds *)

let test_solution_utilization_law () =
  let nw = central_server ~n:6 in
  let s = Mva.solve nw in
  (* U_m = X * D_m at every station. *)
  for m = 0 to 2 do
    close ~eps:1e-9 "utilization law"
      (s.Solution.throughput.(0) *. Network.demand nw ~cls:0 ~station:m)
      (Solution.utilization s ~station:m)
  done;
  Alcotest.(check bool) "utilization < 1" true
    (Solution.utilization s ~station:2 < 1.)

let test_solution_queues_sum_to_population () =
  let s = Mva.solve (two_class ()) in
  let total =
    Solution.queue_total s ~station:0 +. Solution.queue_total s ~station:1
  in
  close ~eps:1e-9 "all customers somewhere" 5. total

let test_bounds_sandwich_exact () =
  List.iter
    (fun n ->
      let nw = central_server ~n in
      let x = (Mva.solve nw).Solution.throughput.(0) in
      let b = Bounds.analyze nw ~cls:0 in
      if x > b.Bounds.x_upper +. 1e-9 then
        Alcotest.failf "X %g above upper bound %g at N=%d" x b.Bounds.x_upper n;
      if x < b.Bounds.x_lower -. 1e-9 then
        Alcotest.failf "X %g below lower bound %g at N=%d" x b.Bounds.x_lower n;
      if x > b.Bounds.x_balanced_upper +. 1e-9 then
        Alcotest.failf "X %g above balanced upper %g at N=%d" x
          b.Bounds.x_balanced_upper n)
    [ 1; 2; 4; 8; 16; 64 ]

let test_bounds_knee () =
  let nw = repairman ~n:4 ~think:5. ~repair:1. in
  let b = Bounds.analyze nw ~cls:0 in
  close "N* = (D+Z)/Dmax" 6. b.Bounds.n_star;
  close "x upper small N" (4. /. 6.) b.Bounds.x_upper

let test_bounds_rejects_multiclass () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Bounds.analyze (two_class ()) ~cls:0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Multi-server stations *)

let multi_server_net ~servers ~n =
  Network.make
    ~stations:
      [| ("think", Network.Delay); ("pool", Network.Multi_server servers) |]
    ~classes:
      [|
        {
          Network.class_name = "jobs";
          population = n;
          visits = [| 1.; 1. |];
          service = [| 2.; 1.5 |];
        };
      |]

let test_multiserver_convolution_vs_ctmc () =
  List.iter
    (fun (servers, n) ->
      let nw = multi_server_net ~servers ~n in
      let a = Convolution.solve nw in
      let b = Lattol_markov.Qn_ctmc.solve nw in
      close ~eps:1e-8 "throughput" a.Solution.throughput.(0)
        b.Solution.throughput.(0);
      close ~eps:1e-7 "queue" a.Solution.queue.(0).(1) b.Solution.queue.(0).(1))
    [ (2, 5); (3, 7); (4, 4) ]

let test_multiserver_one_equals_queueing () =
  let ms = Convolution.solve (multi_server_net ~servers:1 ~n:6) in
  let nw =
    Network.make
      ~stations:[| ("think", Network.Delay); ("pool", Network.Queueing) |]
      ~classes:
        [|
          {
            Network.class_name = "jobs";
            population = 6;
            visits = [| 1.; 1. |];
            service = [| 2.; 1.5 |];
          };
        |]
  in
  let q = Convolution.solve nw in
  close ~eps:1e-12 "identical" q.Solution.throughput.(0) ms.Solution.throughput.(0);
  (* and the MVA conditional-wait form also collapses to the plain case *)
  let m1 = Mva.solve (multi_server_net ~servers:1 ~n:6) in
  let m2 = Mva.solve nw in
  close ~eps:1e-12 "mva identical" m2.Solution.throughput.(0)
    m1.Solution.throughput.(0)

let test_multiserver_amva_accuracy () =
  List.iter
    (fun (servers, n) ->
      let nw = multi_server_net ~servers ~n in
      let exact = (Convolution.solve nw).Solution.throughput.(0) in
      let approx = (Amva.solve nw).Solution.throughput.(0) in
      let err = abs_float (approx -. exact) /. exact in
      if err > 0.08 then
        Alcotest.failf "AMVA multiserver error %.3f at c=%d N=%d" err servers n)
    [ (2, 5); (2, 10); (3, 8); (4, 12) ]

let test_multiserver_speedup_monotone () =
  let x servers =
    (Convolution.solve (multi_server_net ~servers ~n:8)).Solution.throughput.(0)
  in
  Alcotest.(check bool) "more servers help" true (x 1 < x 2 && x 2 < x 3);
  (* with as many servers as customers the station is effectively a delay *)
  let delay =
    Network.make
      ~stations:[| ("think", Network.Delay); ("pool", Network.Delay) |]
      ~classes:
        [|
          {
            Network.class_name = "jobs";
            population = 8;
            visits = [| 1.; 1. |];
            service = [| 2.; 1.5 |];
          };
        |]
  in
  close ~eps:1e-8 "c = N acts as infinite servers"
    (Mva.solve delay).Solution.throughput.(0)
    (x 8)

let test_multiserver_validation () =
  Alcotest.(check bool) "0 servers rejected" true
    (try
       ignore (multi_server_net ~servers:0 ~n:1);
       false
     with Invalid_argument _ -> true)

let test_multiserver_bounds_hold () =
  List.iter
    (fun (servers, n) ->
      let nw = multi_server_net ~servers ~n in
      let x = (Convolution.solve nw).Solution.throughput.(0) in
      let b = Bounds.analyze nw ~cls:0 in
      if x > b.Bounds.x_upper +. 1e-9 then
        Alcotest.failf "X %g above upper %g (c=%d N=%d)" x b.Bounds.x_upper
          servers n)
    [ (2, 3); (2, 12); (3, 9) ]

(* ------------------------------------------------------------------ *)
(* Linearizer *)

let test_linearizer_beats_bard_schweitzer () =
  List.iter
    (fun n ->
      let nw = central_server ~n in
      let e = (Mva.solve nw).Solution.throughput.(0) in
      let bs = (Amva.solve nw).Solution.throughput.(0) in
      let lin = (Linearizer.solve nw).Solution.throughput.(0) in
      let err x = abs_float (x -. e) /. e in
      if err lin > err bs +. 1e-9 then
        Alcotest.failf "Linearizer worse than BS at N=%d: %g vs %g" n (err lin)
          (err bs);
      if err lin > 0.01 then
        Alcotest.failf "Linearizer error %g > 1%% at N=%d" (err lin) n)
    [ 2; 5; 10; 30 ]

let test_linearizer_multiclass () =
  let nw = two_class () in
  let e = Mva.solve nw and lin = Linearizer.solve nw in
  for c = 0 to 1 do
    let err =
      abs_float (lin.Solution.throughput.(c) -. e.Solution.throughput.(c))
      /. e.Solution.throughput.(c)
    in
    if err > 0.03 then Alcotest.failf "class %d error %g" c err
  done;
  close ~eps:1e-6 "Little's law" 0. (Solution.littles_law_residual lin)

let test_linearizer_exact_at_n1 () =
  let nw = central_server ~n:1 in
  close ~eps:1e-7 "N=1"
    (Mva.solve nw).Solution.throughput.(0)
    (Linearizer.solve nw).Solution.throughput.(0)

let test_linearizer_validation () =
  Alcotest.(check bool) "bad outer iterations" true
    (try
       ignore (Linearizer.solve ~outer_iterations:0 (central_server ~n:2));
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Non-preemptive priority M/M/1 (Cobham) *)

let test_priority_reduces_to_mm1 () =
  (* One class: W = rho s / (1 - rho). *)
  let t =
    Priority_mm1.make [| { Priority_mm1.arrival_rate = 0.8; service_time = 1. } |]
  in
  close ~eps:1e-9 "utilization" 0.8 (Priority_mm1.utilization t);
  close ~eps:1e-9 "waiting" 4. (Priority_mm1.waiting_time t ~cls:0);
  close ~eps:1e-9 "fcfs same" 4. (Priority_mm1.fcfs_waiting_time t)

let test_priority_ordering () =
  let t =
    Priority_mm1.make
      [|
        { Priority_mm1.arrival_rate = 0.3; service_time = 1. };
        { Priority_mm1.arrival_rate = 0.3; service_time = 1. };
        { Priority_mm1.arrival_rate = 0.3; service_time = 1. };
      |]
  in
  let w k = Priority_mm1.waiting_time t ~cls:k in
  Alcotest.(check bool) "monotone in class" true (w 0 < w 1 && w 1 < w 2);
  (* conservation: the weighted average waiting equals FCFS (equal service
     times => the M/M/1 work-conservation identity) *)
  let avg = (w 0 +. w 1 +. w 2) /. 3. in
  close ~eps:1e-9 "work conservation" (Priority_mm1.fcfs_waiting_time t) avg

let test_priority_validation () =
  Alcotest.(check bool) "overload rejected" true
    (try
       ignore
         (Priority_mm1.make
            [| { Priority_mm1.arrival_rate = 2.; service_time = 1. } |]);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Jackson open networks *)

let single ~servers ~rho =
  Jackson.make
    ~stations:[| { Jackson.name = "q"; servers; service_time = 1. } |]
    ~arrivals:[| rho *. float_of_int servers |]
    ~routing:[| [| 0. |] |]

let test_jackson_mm1 () =
  let t = single ~servers:1 ~rho:0.8 in
  close ~eps:1e-9 "L = rho/(1-rho)" 4. (Jackson.mean_queue_length t ~station:0);
  close ~eps:1e-9 "W = 1/(1-rho)" 5. (Jackson.mean_response_time t ~station:0);
  Alcotest.(check bool) "stable" true (Jackson.is_stable t);
  close ~eps:1e-9 "capacity headroom" 1.25 (Jackson.capacity t)

let test_jackson_mm2 () =
  (* Erlang-C(2, 0.8) = 0.7111..., L = 32/9 + 8/5 hand-checked 4.4444. *)
  let t = single ~servers:2 ~rho:0.8 in
  close ~eps:1e-4 "L" 4.4444 (Jackson.mean_queue_length t ~station:0);
  (* many servers at the same rho wait less *)
  let l4 = Jackson.mean_queue_length (single ~servers:4 ~rho:0.8) ~station:0 in
  Alcotest.(check bool) "pooling helps" true
    (l4 -. (4. *. 0.8) < Jackson.mean_queue_length t ~station:0 -. 1.6)

let test_jackson_tandem_sojourn () =
  let t =
    Jackson.make
      ~stations:
        [| { Jackson.name = "a"; servers = 1; service_time = 1. };
           { Jackson.name = "b"; servers = 1; service_time = 0.5 } |]
      ~arrivals:[| 0.5; 0. |]
      ~routing:[| [| 0.; 1. |]; [| 0.; 0. |] |]
  in
  close ~eps:1e-9 "lambda b" 0.5 (Jackson.throughputs t).(1);
  close ~eps:1e-6 "sojourn = W_a + W_b" (2. +. (2. /. 3.))
    (Jackson.mean_sojourn t ~entry:0)

let test_jackson_feedback () =
  (* Arrivals 1, return probability 1/2: effective rate 2. *)
  let t =
    Jackson.make
      ~stations:[| { Jackson.name = "cpu"; servers = 1; service_time = 0.2 } |]
      ~arrivals:[| 1. |]
      ~routing:[| [| 0.5 |] |]
  in
  close ~eps:1e-9 "traffic equations" 2. (Jackson.throughputs t).(0);
  close ~eps:1e-9 "rho" 0.4 (Jackson.utilization t ~station:0)

let test_jackson_unstable () =
  let t = single ~servers:1 ~rho:1.2 in
  Alcotest.(check bool) "unstable" false (Jackson.is_stable t);
  Alcotest.(check bool) "infinite queue" true
    (Jackson.mean_queue_length t ~station:0 = infinity)

let test_jackson_validation () =
  let invalid f =
    Alcotest.(check bool) "raises" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  (* closed loop: jobs never leave *)
  invalid (fun () ->
      Jackson.make
        ~stations:[| { Jackson.name = "q"; servers = 1; service_time = 1. } |]
        ~arrivals:[| 1. |]
        ~routing:[| [| 1. |] |]);
  invalid (fun () ->
      Jackson.make
        ~stations:[| { Jackson.name = "q"; servers = 0; service_time = 1. } |]
        ~arrivals:[| 1. |]
        ~routing:[| [| 0. |] |]);
  invalid (fun () ->
      Jackson.make
        ~stations:[| { Jackson.name = "q"; servers = 1; service_time = 1. } |]
        ~arrivals:[| -1. |]
        ~routing:[| [| 0. |] |]);
  invalid (fun () ->
      Jackson.make
        ~stations:[| { Jackson.name = "q"; servers = 1; service_time = 1. } |]
        ~arrivals:[| 1. |]
        ~routing:[| [| 1.5 |] |])

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_net =
  (* random single-class network with 2-5 queueing stations *)
  QCheck.make
    ~print:(fun (n, demands) ->
      Printf.sprintf "N=%d demands=[%s]" n
        (String.concat ";" (List.map string_of_float demands)))
    QCheck.Gen.(
      pair (int_range 1 12)
        (list_size (int_range 2 5) (float_range 0.05 3.)))

let build_single (n, demands) =
  let m = List.length demands in
  Network.make
    ~stations:(Array.init m (fun i -> (Printf.sprintf "s%d" i, Network.Queueing)))
    ~classes:
      [|
        {
          Network.class_name = "c";
          population = n;
          visits = Array.make m 1.;
          service = Array.of_list demands;
        };
      |]

let prop_mva_littles_law =
  QCheck.Test.make ~name:"exact MVA satisfies Little's law" ~count:100 arb_net
    (fun spec ->
      let s = Mva.solve (build_single spec) in
      Solution.littles_law_residual s < 1e-9)

let prop_mva_within_bounds =
  QCheck.Test.make ~name:"exact MVA within asymptotic bounds" ~count:100
    arb_net (fun spec ->
      let nw = build_single spec in
      let x = (Mva.solve nw).Solution.throughput.(0) in
      let b = Bounds.analyze nw ~cls:0 in
      x <= b.Bounds.x_upper +. 1e-9 && x >= b.Bounds.x_lower -. 1e-9)

let prop_throughput_monotone_in_population =
  QCheck.Test.make ~name:"throughput grows with population" ~count:50 arb_net
    (fun (n, demands) ->
      let x pop = (Mva.solve (build_single (pop, demands))).Solution.throughput.(0) in
      x n <= x (n + 1) +. 1e-9)

let prop_amva_within_10pct =
  QCheck.Test.make ~name:"AMVA within 10% of exact" ~count:60 arb_net
    (fun spec ->
      let nw = build_single spec in
      let e = (Mva.solve nw).Solution.throughput.(0) in
      let a = (Amva.solve nw).Solution.throughput.(0) in
      abs_float (a -. e) /. e < 0.10)

let prop_amva_queues_sum_to_population =
  QCheck.Test.make ~name:"AMVA queues sum to population" ~count:60 arb_net
    (fun spec ->
      let nw = build_single spec in
      let s = Amva.solve nw in
      let total = ref 0. in
      for m = 0 to Network.num_stations nw - 1 do
        total := !total +. Solution.queue_total s ~station:m
      done;
      abs_float (!total -. float_of_int (Network.population nw 0)) < 1e-5)

let prop_linearizer_close_to_exact =
  QCheck.Test.make ~name:"Linearizer within 5% of exact" ~count:40 arb_net
    (fun spec ->
      let nw = build_single spec in
      let e = (Mva.solve nw).Solution.throughput.(0) in
      let lin = (Linearizer.solve nw).Solution.throughput.(0) in
      abs_float (lin -. e) /. e < 0.05)

let prop_jackson_traffic_fixed_point =
  QCheck.Test.make ~name:"Jackson throughputs satisfy the traffic equations"
    ~count:60
    QCheck.(
      pair
        (list_of_size Gen.(int_range 2 5) (float_range 0.01 1.))
        (float_range 0. 0.7))
    (fun (arrival_list, feedback) ->
      let n = List.length arrival_list in
      let arrivals = Array.of_list arrival_list in
      (* ring routing with leakage 1 - feedback at each hop *)
      let routing =
        Array.init n (fun i ->
            Array.init n (fun j -> if j = (i + 1) mod n then feedback else 0.))
      in
      let stations =
        Array.init n (fun i ->
            { Jackson.name = Printf.sprintf "s%d" i; servers = 1;
              service_time = 0.01 })
      in
      let t = Jackson.make ~stations ~arrivals ~routing in
      let lambda = Jackson.throughputs t in
      let ok = ref true in
      for i = 0 to n - 1 do
        let inflow =
          arrivals.(i) +. (feedback *. lambda.((i - 1 + n) mod n))
        in
        if abs_float (inflow -. lambda.(i)) > 1e-9 then ok := false
      done;
      !ok)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lattol_queueing"
    [
      ( "network",
        [
          Alcotest.test_case "accessors" `Quick test_network_accessors;
          Alcotest.test_case "validation" `Quick test_network_validation;
          Alcotest.test_case "with_population" `Quick test_with_population;
        ] );
      ( "mva",
        [
          Alcotest.test_case "single customer" `Quick test_mva_single_customer;
          Alcotest.test_case "repairman" `Quick test_mva_repairman_closed_form;
          Alcotest.test_case "matches convolution" `Quick test_mva_matches_convolution;
          Alcotest.test_case "multiclass Little" `Quick test_mva_multiclass_littles_law;
          Alcotest.test_case "state cap" `Quick test_mva_state_cap;
          Alcotest.test_case "delay only" `Quick test_mva_delay_only;
        ] );
      ( "amva",
        [
          Alcotest.test_case "close to exact (1 class)" `Quick
            test_amva_close_to_exact_single;
          Alcotest.test_case "close to exact (2 classes)" `Quick
            test_amva_close_to_exact_multiclass;
          Alcotest.test_case "exact at N=1" `Quick test_amva_exact_at_n1;
          Alcotest.test_case "convergence flag" `Quick test_amva_converges_flag;
          Alcotest.test_case "iteration cap" `Quick test_amva_iteration_cap;
          Alcotest.test_case "Little's law" `Quick test_amva_littles_law;
          Alcotest.test_case "options validated" `Quick test_amva_options_validated;
          Alcotest.test_case "damping reaches same fixed point" `Quick
            test_amva_damping_same_fixed_point;
        ] );
      ( "convolution",
        [
          Alcotest.test_case "rejects multiclass" `Quick
            test_convolution_rejects_multiclass;
          Alcotest.test_case "normalizing constants" `Quick
            test_convolution_normalizing_constants_positive;
          Alcotest.test_case "with delay station" `Quick test_convolution_with_delay;
        ] );
      ( "multi-server",
        [
          Alcotest.test_case "convolution vs CTMC" `Quick
            test_multiserver_convolution_vs_ctmc;
          Alcotest.test_case "c=1 equals single server" `Quick
            test_multiserver_one_equals_queueing;
          Alcotest.test_case "AMVA accuracy" `Quick test_multiserver_amva_accuracy;
          Alcotest.test_case "speedup monotone" `Quick
            test_multiserver_speedup_monotone;
          Alcotest.test_case "validation" `Quick test_multiserver_validation;
          Alcotest.test_case "bounds hold" `Quick test_multiserver_bounds_hold;
        ] );
      ( "solution+bounds",
        [
          Alcotest.test_case "utilization law" `Quick test_solution_utilization_law;
          Alcotest.test_case "queues sum to N" `Quick
            test_solution_queues_sum_to_population;
          Alcotest.test_case "bounds sandwich" `Quick test_bounds_sandwich_exact;
          Alcotest.test_case "knee" `Quick test_bounds_knee;
          Alcotest.test_case "bounds reject multiclass" `Quick
            test_bounds_rejects_multiclass;
        ] );
      ( "priority-mm1",
        [
          Alcotest.test_case "reduces to M/M/1" `Quick test_priority_reduces_to_mm1;
          Alcotest.test_case "class ordering + conservation" `Quick
            test_priority_ordering;
          Alcotest.test_case "validation" `Quick test_priority_validation;
        ] );
      ( "jackson",
        [
          Alcotest.test_case "M/M/1" `Quick test_jackson_mm1;
          Alcotest.test_case "M/M/c" `Quick test_jackson_mm2;
          Alcotest.test_case "tandem sojourn" `Quick test_jackson_tandem_sojourn;
          Alcotest.test_case "feedback loop" `Quick test_jackson_feedback;
          Alcotest.test_case "instability" `Quick test_jackson_unstable;
          Alcotest.test_case "validation" `Quick test_jackson_validation;
        ] );
      ( "linearizer",
        [
          Alcotest.test_case "beats Bard-Schweitzer" `Quick
            test_linearizer_beats_bard_schweitzer;
          Alcotest.test_case "multiclass" `Quick test_linearizer_multiclass;
          Alcotest.test_case "exact at N=1" `Quick test_linearizer_exact_at_n1;
          Alcotest.test_case "validation" `Quick test_linearizer_validation;
        ] );
      ( "properties",
        qcheck
          [
            prop_mva_littles_law;
            prop_mva_within_bounds;
            prop_throughput_monotone_in_population;
            prop_amva_within_10pct;
            prop_amva_queues_sum_to_population;
            prop_linearizer_close_to_exact;
            prop_jackson_traffic_fixed_point;
          ] );
    ]
