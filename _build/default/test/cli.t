The command-line interface, exercised end to end on deterministic
(analytical) commands.  Keep the configurations tiny so output stays stable.

Closed-form bottleneck analysis reproduces the paper's anchors:

  $ ../bin/mms_cli.exe bottleneck
  MMS torus 4x4: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  d_avg=1.733 lambda_net_sat=0.2885 p_remote*: critical=0.183 saturation=0.288 mem demand=1.000 U_p cap=1.000

Solving a small machine:

  $ ../bin/mms_cli.exe solve -k 2 --threads 2 --p-remote 0.5
  MMS torus 2x2: n_t=2 R=1 C=0 p_remote=0.5 geometric(p_sw=0.5) L=1 S=1
  
  U_p        = 0.3283
  lambda     = 0.3283
  lambda_net = 0.1642
  S_obs      = 3.517
  L_obs      = 1.378
  cycle      = 6.091
  util: mem 0.328, sw_in 0.438, sw_out 0.328, su 0.000
  queue: proc 0.393, mem 0.452, net 1.155

Tolerance indices and zones:

  $ ../bin/mms_cli.exe tolerance -k 2 --threads 2 --p-remote 0.5 | tail -n 2
  tol_network = 0.4925 (U_p 0.3283 vs ideal 0.6667; not tolerated; ideal via p_remote = 0)
  tol_memory = 0.8430 (U_p 0.3283 vs ideal 0.3895; tolerated; ideal via zero delay)

Sweeps emit CSV:

  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 | head -n 2
  # MMS torus 2x2: n_t=8 R=1 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1
  param,value,u_p,lambda,lambda_net,s_obs,l_obs,tol_network,tol_memory

Invalid parameters are rejected with a clear message:

  $ ../bin/mms_cli.exe solve --p-remote 1.5 2>&1 | head -n 1
  mms_cli: p_remote 1.5 must lie in [0, 1]

Unknown solvers too:

  $ ../bin/mms_cli.exe solve --solver magic 2>&1 | head -n 2 | tr -s ' '
  mms_cli: option '--solver': unknown solver "magic"
  Usage: mms_cli solve [OPTION]…

The kernel suite:

  $ ../bin/mms_cli.exe kernels -k 2 --threads 2 -R 2 | head -n 5
  MMS torus 2x2: n_t=2 R=2 C=0 p_remote=0.2 geometric(p_sw=0.5) L=1 S=1, kernel compute fraction 0.6
  
    kernel                      U_p lambda_net    S_obs  tol_net
    nearest-neighbour        0.6366     0.1273    2.522   0.7531
    transpose                0.7095     0.0574    3.624   0.8393

Reports carry a verdict:

  $ ../bin/mms_cli.exe report -k 2 --threads 2 | grep verdict
  verdict     memory-bound
