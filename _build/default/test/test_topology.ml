(* Tests for the interconnection-network substrate: torus/mesh distance
   structure, dimension-order routing, and the remote-access patterns. *)

open Lattol_topology

let torus k = Topology.create Topology.Torus ~k

let mesh k = Topology.create Topology.Mesh ~k

(* ------------------------------------------------------------------ *)
(* Topology *)

let test_coords_roundtrip () =
  let t = torus 5 in
  for n = 0 to Topology.num_nodes t - 1 do
    Alcotest.(check int) "roundtrip" n (Topology.of_coords t (Topology.coords t n))
  done

let test_torus_distances () =
  let t = torus 4 in
  let d a b = Topology.distance t a b in
  Alcotest.(check int) "self" 0 (d 0 0);
  Alcotest.(check int) "adjacent" 1 (d 0 1);
  Alcotest.(check int) "wraparound x" 1 (d 0 3);
  Alcotest.(check int) "two hops" 2 (d 0 2);
  (* node 10 = (2,2): opposite corner of 0 on a 4-torus *)
  Alcotest.(check int) "diameter pair" 4 (d 0 10)

let test_mesh_distances () =
  let t = mesh 4 in
  let d a b = Topology.distance t a b in
  Alcotest.(check int) "no wraparound" 3 (d 0 3);
  Alcotest.(check int) "manhattan" 6 (d 0 15)

let test_max_distance () =
  Alcotest.(check int) "torus 4" 4 (Topology.max_distance (torus 4));
  Alcotest.(check int) "torus 5" 4 (Topology.max_distance (torus 5));
  Alcotest.(check int) "mesh 4" 6 (Topology.max_distance (mesh 4));
  Alcotest.(check int) "torus 1" 0 (Topology.max_distance (torus 1))

let test_distance_counts_torus_4 () =
  (* 4x4 torus: 1 self, 4 at h=1, 6 at h=2, 4 at h=3, 1 at h=4. *)
  let counts = Topology.distance_counts (torus 4) 5 in
  Alcotest.(check (array int)) "histogram" [| 1; 4; 6; 4; 1 |] counts

let test_distance_counts_node_independent () =
  let t = torus 5 in
  let reference = Topology.distance_counts t 0 in
  for n = 1 to Topology.num_nodes t - 1 do
    Alcotest.(check (array int)) "same histogram" reference
      (Topology.distance_counts t n)
  done

let test_route_properties () =
  let t = torus 4 in
  for src = 0 to 15 do
    for dst = 0 to 15 do
      let route = Topology.route t ~src ~dst in
      Alcotest.(check int)
        (Printf.sprintf "route length %d->%d" src dst)
        (Topology.distance t src dst)
        (List.length route);
      (* consecutive nodes on the route are neighbours *)
      let rec check_hops prev = function
        | [] -> ()
        | hop :: rest ->
          if Topology.distance t prev hop <> 1 then
            Alcotest.failf "non-adjacent hop %d->%d on route %d->%d" prev hop
              src dst;
          check_hops hop rest
      in
      check_hops src route;
      (match List.rev route with
      | last :: _ -> Alcotest.(check int) "ends at dst" dst last
      | [] -> Alcotest.(check int) "empty iff self" src dst)
    done
  done

let test_route_translation_invariance () =
  (* On the torus, routes are translation-invariant as node sequences. *)
  let t = torus 4 in
  let shift by n =
    let x, y = Topology.coords t n and bx, by = Topology.coords t by in
    Topology.of_coords t ((x + bx) mod 4, (y + by) mod 4)
  in
  let route_a = Topology.route t ~src:0 ~dst:9 in
  let route_b = Topology.route t ~src:(shift 6 0) ~dst:(shift 6 9) in
  Alcotest.(check (list int)) "translated route" (List.map (shift 6) route_a)
    route_b

let test_neighbours () =
  let t = torus 4 in
  Alcotest.(check int) "torus degree" 4 (List.length (Topology.neighbours t 0));
  let m = mesh 4 in
  Alcotest.(check int) "mesh corner degree" 2 (List.length (Topology.neighbours m 0));
  Alcotest.(check int) "mesh edge degree" 3 (List.length (Topology.neighbours m 1));
  Alcotest.(check int) "mesh inner degree" 4 (List.length (Topology.neighbours m 5));
  let t2 = torus 2 in
  Alcotest.(check int) "2-torus distinct neighbours" 2
    (List.length (Topology.neighbours t2 0))

let test_nodes_at_distance () =
  let t = torus 4 in
  Alcotest.(check int) "4 neighbours" 4
    (List.length (Topology.nodes_at_distance t 0 1));
  Alcotest.(check (list int)) "diameter node" [ 10 ]
    (Topology.nodes_at_distance t 0 4)

let test_invalid_args () =
  Alcotest.check_raises "k = 0" (Invalid_argument "Topology.create: k >= 1")
    (fun () -> ignore (torus 0));
  let t = torus 2 in
  Alcotest.check_raises "bad node"
    (Invalid_argument "Topology.coords: node out of range") (fun () ->
      ignore (Topology.coords t 4))

(* ------------------------------------------------------------------ *)
(* n-dimensional networks *)

let test_nd_ring () =
  let r = Topology.create_nd Topology.Torus ~dims:[ 8 ] in
  Alcotest.(check int) "nodes" 8 (Topology.num_nodes r);
  Alcotest.(check int) "diameter" 4 (Topology.max_distance r);
  Alcotest.(check int) "wrap distance" 1 (Topology.distance r 0 7);
  Alcotest.(check int) "ring degree" 2 (List.length (Topology.neighbours r 3))

let test_nd_cube () =
  let c = Topology.create_nd Topology.Torus ~dims:[ 3; 3; 3 ] in
  Alcotest.(check int) "nodes" 27 (Topology.num_nodes c);
  Alcotest.(check int) "degree" 6 (List.length (Topology.neighbours c 13));
  Alcotest.(check int) "diameter" 3 (Topology.max_distance c);
  (* coords roundtrip in 3D *)
  for n = 0 to 26 do
    Alcotest.(check int) "roundtrip" n
      (Topology.of_coords_nd c (Topology.coords_nd c n))
  done

let test_nd_asymmetric_dims () =
  let t = Topology.create_nd Topology.Mesh ~dims:[ 2; 5 ] in
  Alcotest.(check int) "nodes" 10 (Topology.num_nodes t);
  Alcotest.(check int) "diameter" 5 (Topology.max_distance t);
  Alcotest.(check int) "corner to corner" 5 (Topology.distance t 0 9)

let test_nd_route_length () =
  let c = Topology.create_nd Topology.Torus ~dims:[ 4; 3; 2 ] in
  for src = 0 to Topology.num_nodes c - 1 do
    for dst = 0 to Topology.num_nodes c - 1 do
      Alcotest.(check int) "route = distance"
        (Topology.distance c src dst)
        (List.length (Topology.route c ~src ~dst))
    done
  done

let test_translate_subtract () =
  let t = torus 4 in
  for n = 0 to 15 do
    for by = 0 to 15 do
      let moved = Topology.translate t n ~by in
      Alcotest.(check int) "subtract inverts translate" n
        (Topology.subtract t moved ~by);
      (* translation preserves distances *)
      Alcotest.(check int) "isometry"
        (Topology.distance t 0 n)
        (Topology.distance t by moved)
    done
  done;
  Alcotest.(check bool) "mesh translate rejected" true
    (try
       ignore (Topology.translate (mesh 3) 0 ~by:1);
       false
     with Invalid_argument _ -> true)

let test_hypercube () =
  let h = Topology.hypercube ~dimensions:4 in
  Alcotest.(check int) "nodes" 16 (Topology.num_nodes h);
  Alcotest.(check int) "degree" 4 (List.length (Topology.neighbours h 0));
  Alcotest.(check int) "diameter" 4 (Topology.max_distance h);
  (* Hamming distance: node indices differ in bits *)
  Alcotest.(check int) "hamming 0-15" 4 (Topology.distance h 0 15);
  Alcotest.(check int) "hamming 0-5" 2 (Topology.distance h 0 5)

let test_coords_2d_only () =
  let r = Topology.create_nd Topology.Torus ~dims:[ 8 ] in
  Alcotest.(check bool) "coords on ring rejected" true
    (try
       ignore (Topology.coords r 0);
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Access *)

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let test_access_rows_normalized () =
  let t = torus 4 in
  List.iter
    (fun pattern ->
      let a = Access.create t pattern ~p_remote:0.37 in
      let m = Access.matrix a in
      Array.iteri
        (fun src row ->
          let sum = Array.fold_left ( +. ) 0. row in
          close "row sums to 1" 1. sum;
          close "local prob" 0.63 row.(src))
        m)
    [ Access.Geometric 0.5; Access.Uniform ]

let test_access_uniform_shares () =
  let t = torus 4 in
  let a = Access.create t Access.Uniform ~p_remote:0.3 in
  close "remote share" (0.3 /. 15.) (Access.prob a ~src:0 ~dst:7)

let test_access_geometric_locality () =
  let t = torus 4 in
  let a = Access.create t (Access.Geometric 0.5) ~p_remote:0.2 in
  (* Per-node probability at h=2 vs h=1: (q^2/a)/6 over (q/a)/4. *)
  let p1 = Access.prob a ~src:0 ~dst:1 in
  let p2 = Access.prob a ~src:0 ~dst:2 in
  close "ratio" (0.5 *. 4. /. 6.) (p2 /. p1)

let test_paper_d_avg () =
  (* The anchor that pins the paper's Table 1: p_sw = 0.5 on the 4x4 torus
     gives d_avg = 1.7333. *)
  let t = torus 4 in
  let a = Access.create t (Access.Geometric 0.5) ~p_remote:0.2 in
  close ~eps:1e-4 "d_avg" 1.7333 (Access.average_distance a ~src:0)

let test_uniform_d_avg_growth () =
  (* Paper Section 7: uniform d_avg grows from 1.33 (k=2) to 5.05 (k=10). *)
  let d k =
    let a = Access.create (torus k) Access.Uniform ~p_remote:0.5 in
    Access.average_distance a ~src:0
  in
  close ~eps:1e-2 "k=2" 1.333 (d 2);
  close ~eps:1e-2 "k=10" 5.0505 (d 10)

let test_geometric_d_avg_asymptote () =
  (* Geometric d_avg approaches 1/(1-p_sw) = 2 as the torus grows. *)
  let d k =
    let a = Access.create (torus k) (Access.Geometric 0.5) ~p_remote:0.5 in
    Access.average_distance a ~src:0
  in
  Alcotest.(check bool) "approaches 2 from below" true (d 10 < 2. && d 10 > 1.9)

let test_access_zero_remote () =
  let t = torus 4 in
  let a = Access.create t (Access.Geometric 0.5) ~p_remote:0. in
  close "all local" 1. (Access.prob a ~src:3 ~dst:3);
  Alcotest.(check bool) "d_avg undefined" true
    (Float.is_nan (Access.average_distance a ~src:3))

let test_access_validation () =
  let t = torus 4 in
  let invalid f =
    Alcotest.(check bool) "raises" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  invalid (fun () -> Access.create t (Access.Geometric 0.5) ~p_remote:1.5);
  invalid (fun () -> Access.create t (Access.Geometric 1.) ~p_remote:0.5);
  invalid (fun () -> Access.create t (Access.Geometric 0.) ~p_remote:0.5);
  invalid (fun () -> Access.create (torus 1) Access.Uniform ~p_remote:0.5)

let test_distance_pmf () =
  let t = torus 4 in
  let a = Access.create t (Access.Geometric 0.5) ~p_remote:0.4 in
  let pmf = Access.distance_pmf a ~src:0 in
  close "local mass" 0.6 pmf.(0);
  close "total mass" 1. (Array.fold_left ( +. ) 0. pmf)

(* ------------------------------------------------------------------ *)
(* Explicit matrices *)

let test_explicit_roundtrip () =
  let t = torus 3 in
  (* Build from a geometric pattern, feed back as explicit: identical. *)
  let geo = Access.create t (Access.Geometric 0.4) ~p_remote:0.3 in
  let exp_a = Access.create t (Access.Explicit (Access.matrix geo)) ~p_remote:0. in
  for src = 0 to 8 do
    for dst = 0 to 8 do
      close "probability preserved" (Access.prob geo ~src ~dst)
        (Access.prob exp_a ~src ~dst)
    done
  done;
  close ~eps:1e-9 "derived p_remote" 0.3 (Access.p_remote exp_a);
  Alcotest.(check bool) "not translation invariant flag" false
    (Access.is_translation_invariant exp_a);
  Alcotest.(check bool) "built-in invariant on torus" true
    (Access.is_translation_invariant geo)

let test_explicit_validation () =
  let t = torus 2 in
  let invalid m =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (Access.create t (Access.Explicit m) ~p_remote:0.);
         false
       with Invalid_argument _ -> true)
  in
  invalid [| [| 1. |] |];
  invalid (Array.make_matrix 4 3 0.25);
  invalid [| [| 0.5; 0.5; 0.; 0. |]; [| 0.5; 0.6; 0.; 0. |];
             [| 1.; 0.; 0.; 0. |]; [| 1.; 0.; 0.; 0. |] |];
  invalid [| [| 1.5; -0.5; 0.; 0. |]; [| 0.; 1.; 0.; 0. |];
             [| 0.; 0.; 1.; 0. |]; [| 0.; 0.; 0.; 1. |] |]

let test_explicit_remote_fraction () =
  let t = torus 2 in
  let m =
    [| [| 0.4; 0.6; 0.; 0. |]; [| 0.; 1.; 0.; 0. |];
       [| 0.; 0.; 1.; 0. |]; [| 0.; 0.; 0.; 1. |] |]
  in
  let a = Access.create t (Access.Explicit m) ~p_remote:0.9 (* ignored *) in
  close "per-source remote" 0.6 (Access.remote_fraction a ~src:0);
  close "other sources local" 0. (Access.remote_fraction a ~src:2);
  close "mean" 0.15 (Access.p_remote a)

(* ------------------------------------------------------------------ *)
(* Properties *)

let arb_k = QCheck.int_range 2 7

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance is symmetric" ~count:100
    QCheck.(triple arb_k (int_range 0 48) (int_range 0 48))
    (fun (k, a, b) ->
      let t = torus k in
      let n = Topology.num_nodes t in
      let a = a mod n and b = b mod n in
      Topology.distance t a b = Topology.distance t b a)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"distance triangle inequality" ~count:200
    QCheck.(quad arb_k (int_range 0 48) (int_range 0 48) (int_range 0 48))
    (fun (k, a, b, c) ->
      let t = torus k in
      let n = Topology.num_nodes t in
      let a = a mod n and b = b mod n and c = c mod n in
      Topology.distance t a c
      <= Topology.distance t a b + Topology.distance t b c)

let prop_route_length_is_distance =
  QCheck.Test.make ~name:"route length equals distance (mesh too)" ~count:200
    QCheck.(quad (int_range 2 6) bool (int_range 0 35) (int_range 0 35))
    (fun (k, wrap, a, b) ->
      let t = if wrap then torus k else mesh k in
      let n = Topology.num_nodes t in
      let src = a mod n and dst = b mod n in
      List.length (Topology.route t ~src ~dst) = Topology.distance t src dst)

let prop_access_rows_sum_to_one =
  QCheck.Test.make ~name:"access matrix rows sum to 1" ~count:100
    QCheck.(quad arb_k (float_range 0.05 0.95) (float_range 0.05 0.95) bool)
    (fun (k, p_sw, p_remote, geometric) ->
      let t = torus k in
      let pattern = if geometric then Access.Geometric p_sw else Access.Uniform in
      let a = Access.create t pattern ~p_remote in
      let ok = ref true in
      Array.iter
        (fun row ->
          let s = Array.fold_left ( +. ) 0. row in
          if abs_float (s -. 1.) > 1e-9 then ok := false)
        (Access.matrix a);
      !ok)

let prop_geometric_monotone_in_distance =
  QCheck.Test.make
    ~name:"geometric distance pmf decays by exactly p_sw per hop" ~count:100
    QCheck.(pair (int_range 3 7) (float_range 0.1 0.9))
    (fun (k, p_sw) ->
      (* The distribution is geometric over distances: the total mass at
         distance h+1 is p_sw times the mass at h (when both distances
         exist); per-node probabilities need not be monotone. *)
      let t = torus k in
      let a = Access.create t (Access.Geometric p_sw) ~p_remote:0.5 in
      let counts = Topology.distance_counts t 0 in
      let pmf = Access.distance_pmf a ~src:0 in
      let ok = ref true in
      for h = 1 to Array.length counts - 2 do
        if counts.(h) > 0 && counts.(h + 1) > 0 then begin
          let ratio = pmf.(h + 1) /. pmf.(h) in
          if abs_float (ratio -. p_sw) > 1e-9 then ok := false
        end
      done;
      !ok)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lattol_topology"
    [
      ( "topology",
        [
          Alcotest.test_case "coords roundtrip" `Quick test_coords_roundtrip;
          Alcotest.test_case "torus distances" `Quick test_torus_distances;
          Alcotest.test_case "mesh distances" `Quick test_mesh_distances;
          Alcotest.test_case "max distance" `Quick test_max_distance;
          Alcotest.test_case "distance counts 4x4" `Quick test_distance_counts_torus_4;
          Alcotest.test_case "vertex transitivity" `Quick
            test_distance_counts_node_independent;
          Alcotest.test_case "route properties" `Quick test_route_properties;
          Alcotest.test_case "route translation invariance" `Quick
            test_route_translation_invariance;
          Alcotest.test_case "neighbours" `Quick test_neighbours;
          Alcotest.test_case "nodes at distance" `Quick test_nodes_at_distance;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
      ( "n-dimensional",
        [
          Alcotest.test_case "ring" `Quick test_nd_ring;
          Alcotest.test_case "cube" `Quick test_nd_cube;
          Alcotest.test_case "asymmetric dims" `Quick test_nd_asymmetric_dims;
          Alcotest.test_case "route lengths" `Quick test_nd_route_length;
          Alcotest.test_case "translate/subtract" `Quick test_translate_subtract;
          Alcotest.test_case "coords 2D only" `Quick test_coords_2d_only;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
        ] );
      ( "access",
        [
          Alcotest.test_case "rows normalized" `Quick test_access_rows_normalized;
          Alcotest.test_case "uniform shares" `Quick test_access_uniform_shares;
          Alcotest.test_case "geometric locality" `Quick test_access_geometric_locality;
          Alcotest.test_case "paper d_avg = 1.733" `Quick test_paper_d_avg;
          Alcotest.test_case "uniform d_avg growth" `Quick test_uniform_d_avg_growth;
          Alcotest.test_case "geometric d_avg asymptote" `Quick
            test_geometric_d_avg_asymptote;
          Alcotest.test_case "zero remote" `Quick test_access_zero_remote;
          Alcotest.test_case "validation" `Quick test_access_validation;
          Alcotest.test_case "distance pmf" `Quick test_distance_pmf;
        ] );
      ( "explicit",
        [
          Alcotest.test_case "roundtrip" `Quick test_explicit_roundtrip;
          Alcotest.test_case "validation" `Quick test_explicit_validation;
          Alcotest.test_case "remote fraction" `Quick test_explicit_remote_fraction;
        ] );
      ( "properties",
        qcheck
          [
            prop_distance_symmetric;
            prop_triangle_inequality;
            prop_route_length_is_distance;
            prop_access_rows_sum_to_one;
            prop_geometric_monotone_in_distance;
          ] );
    ]
