Examples are deterministic end to end (fixed PRNG seeds); smoke-check the
headline numbers of the model-only ones.

  $ ../examples/quickstart.exe | grep "U_p        ="
    U_p        = 0.8194

  $ ../examples/thread_partitioning.exe | grep -c "best:"
  3

  $ ../examples/scaling_study.exe | grep "k = 10: n_t"
    k = 10: n_t = 8

  $ ../examples/stencil_loop.exe | grep -A1 "distribution" | head -n 2
    distribution        p_remote   d_avg    ~p_sw      U_p  tol_net     S_obs
    block                 0.0026   1.250    0.333   0.9463   0.9995     2.256

  $ ../examples/mixed_workload.exe | grep "total U_p"
    total U_p = 0.949
