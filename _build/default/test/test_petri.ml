(* Tests for the stochastic timed Petri net substrate: structure and firing
   semantics, the token-game simulator against closed-form/CTMC truths, the
   tangible reachability graph, and the MMS STPN model (the paper's
   Section 8 validation vehicle). *)

open Lattol_stats
open Lattol_petri
open Lattol_core

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

(* Small helper: a cyclic net  p0 -t01-> p1 -t10-> p0  with exponential
   timings, equivalent to a 2-state CTMC. *)
let two_phase ~m0 ~to1 ~to0 =
  let b = Petri.Builder.create () in
  let p0 = Petri.Builder.add_place b ~initial:m0 "p0" in
  let p1 = Petri.Builder.add_place b "p1" in
  let t01 =
    Petri.Builder.add_transition b "t01"
      (Petri.Timed (Variate.Exponential to1))
      ~inputs:[ (p0, 1) ]
      ~outputs:[ (p1, 1) ]
  in
  let t10 =
    Petri.Builder.add_transition b "t10"
      (Petri.Timed (Variate.Exponential to0))
      ~inputs:[ (p1, 1) ]
      ~outputs:[ (p0, 1) ]
  in
  (Petri.Builder.build b, p0, p1, t01, t10)

(* ------------------------------------------------------------------ *)
(* Petri structure *)

let test_builder_basic () =
  let net, p0, p1, t01, _ = two_phase ~m0:1 ~to1:1. ~to0:2. in
  Alcotest.(check int) "places" 2 (Petri.num_places net);
  Alcotest.(check int) "transitions" 2 (Petri.num_transitions net);
  Alcotest.(check string) "place name" "p0" (Petri.place_name net p0);
  Alcotest.(check string) "transition name" "t01" (Petri.transition_name net t01);
  Alcotest.(check (array int)) "initial marking" [| 1; 0 |] (Petri.initial_marking net);
  Alcotest.(check int) "touching transitions" 2
    (Array.length (Petri.transitions_on_place net p1))

let test_fire_semantics () =
  let net, _, _, t01, t10 = two_phase ~m0:1 ~to1:1. ~to0:2. in
  let marking = Petri.initial_marking net in
  Alcotest.(check bool) "t01 enabled" true (Petri.enabled net ~marking t01);
  Alcotest.(check bool) "t10 disabled" false (Petri.enabled net ~marking t10);
  Petri.fire net ~marking t01;
  Alcotest.(check (array int)) "after firing" [| 0; 1 |] marking;
  Alcotest.(check bool) "firing disabled transition raises" true
    (try
       Petri.fire net ~marking t01;
       false
     with Invalid_argument _ -> true)

let test_builder_validation () =
  let invalid f =
    Alcotest.(check bool) "raises" true
      (try
         ignore (f ());
         false
       with Invalid_argument _ -> true)
  in
  invalid (fun () ->
      let b = Petri.Builder.create () in
      ignore (Petri.Builder.add_place b ~initial:(-1) "p"));
  invalid (fun () ->
      let b = Petri.Builder.create () in
      let p = Petri.Builder.add_place b "p" in
      Petri.Builder.add_transition b "t" (Petri.Immediate 0.) ~inputs:[ (p, 1) ]
        ~outputs:[]);
  invalid (fun () ->
      let b = Petri.Builder.create () in
      let p = Petri.Builder.add_place b "p" in
      Petri.Builder.add_transition b "t"
        (Petri.Timed (Variate.Exponential 1.))
        ~inputs:[ (p, 0) ] ~outputs:[]);
  invalid (fun () ->
      let b = Petri.Builder.create () in
      Petri.Builder.add_transition b "t"
        (Petri.Timed (Variate.Exponential 1.))
        ~inputs:[] ~outputs:[])

let test_invariants () =
  let net, _, _, _, _ = two_phase ~m0:3 ~to1:1. ~to0:2. in
  Alcotest.(check bool) "token count conserved" true
    (Petri.is_invariant net ~weights:[| 1.; 1. |]);
  Alcotest.(check bool) "unbalanced weights rejected" false
    (Petri.is_invariant net ~weights:[| 1.; 2. |])

(* ------------------------------------------------------------------ *)
(* Simulation semantics *)

let test_simulation_two_phase () =
  (* One token alternating p0 (mean 1) / p1 (mean 2): time-average of p1 is
     2/3, firing rate of each transition is 1/3. *)
  let net, p0, p1, t01, _ = two_phase ~m0:1 ~to1:1. ~to0:2. in
  let stats = Simulation.simulate ~seed:5 ~warmup:500. ~horizon:100_000. net in
  close ~eps:0.02 "p1 occupancy" (2. /. 3.) stats.Simulation.place_mean.(p1);
  close ~eps:0.02 "p0 occupancy" (1. /. 3.) stats.Simulation.place_mean.(p0);
  close ~eps:0.01 "rate" (1. /. 3.) stats.Simulation.rates.(t01);
  close ~eps:0.02 "busy t01 = P(p0 marked)" (1. /. 3.) stats.Simulation.busy.(t01)

let test_simulation_immediate_weights () =
  (* A timed source feeding two immediate branches 1:3 that return the
     token: branch firing rates must split 25/75. *)
  let b = Petri.Builder.create () in
  let src = Petri.Builder.add_place b ~initial:1 "src" in
  let mid = Petri.Builder.add_place b "mid" in
  let t =
    Petri.Builder.add_transition b "tick"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (src, 1) ]
      ~outputs:[ (mid, 1) ]
  in
  let a =
    Petri.Builder.add_transition b "a" (Petri.Immediate 1.) ~inputs:[ (mid, 1) ]
      ~outputs:[ (src, 1) ]
  in
  let c =
    Petri.Builder.add_transition b "c" (Petri.Immediate 3.) ~inputs:[ (mid, 1) ]
      ~outputs:[ (src, 1) ]
  in
  let net = Petri.Builder.build b in
  let stats = Simulation.simulate ~seed:7 ~horizon:200_000. net in
  let total = stats.Simulation.rates.(a) +. stats.Simulation.rates.(c) in
  close ~eps:1e-9 "branches carry all ticks" stats.Simulation.rates.(t) total;
  close ~eps:0.01 "1:3 split" 0.25 (stats.Simulation.rates.(a) /. total)

let test_simulation_deterministic_timing () =
  (* Deterministic 2-cycle: exactly one firing of each transition per 3
     time units. *)
  let b = Petri.Builder.create () in
  let p0 = Petri.Builder.add_place b ~initial:1 "p0" in
  let p1 = Petri.Builder.add_place b "p1" in
  let t01 =
    Petri.Builder.add_transition b "t01"
      (Petri.Timed (Variate.Deterministic 1.))
      ~inputs:[ (p0, 1) ] ~outputs:[ (p1, 1) ]
  in
  let _ =
    Petri.Builder.add_transition b "t10"
      (Petri.Timed (Variate.Deterministic 2.))
      ~inputs:[ (p1, 1) ] ~outputs:[ (p0, 1) ]
  in
  let net = Petri.Builder.build b in
  let stats = Simulation.simulate ~horizon:2_999.5 net in
  Alcotest.(check int) "exactly 1000 firings" 1000 stats.Simulation.firings.(t01)

let test_simulation_vanishing_loop_detected () =
  let b = Petri.Builder.create () in
  let p0 = Petri.Builder.add_place b ~initial:1 "p0" in
  let p1 = Petri.Builder.add_place b "p1" in
  let _ =
    Petri.Builder.add_transition b "i01" (Petri.Immediate 1.) ~inputs:[ (p0, 1) ]
      ~outputs:[ (p1, 1) ]
  in
  let _ =
    Petri.Builder.add_transition b "i10" (Petri.Immediate 1.) ~inputs:[ (p1, 1) ]
      ~outputs:[ (p0, 1) ]
  in
  let net = Petri.Builder.build b in
  Alcotest.(check bool) "livelock detected" true
    (try
       ignore (Simulation.simulate ~horizon:10. net);
       false
     with Failure _ -> true)

(* ------------------------------------------------------------------ *)
(* Reachability *)

let test_reachability_two_phase_vs_ctmc () =
  let net, _, p1, t01, _ = two_phase ~m0:1 ~to1:1. ~to0:2. in
  let g = Reachability.explore net in
  Alcotest.(check int) "two tangible states" 2 (Reachability.num_states g);
  let pi = Reachability.steady_state g in
  close ~eps:1e-9 "p1 mean" (2. /. 3.) (Reachability.place_mean g ~pi p1);
  close ~eps:1e-9 "throughput" (1. /. 3.) (Reachability.throughput g ~pi t01)

let test_reachability_vanishing_elimination () =
  (* timed tick then immediate probabilistic split 1:3 into two slow
     drains; drain throughputs must split accordingly. *)
  let b = Petri.Builder.create () in
  let src = Petri.Builder.add_place b ~initial:1 "src" in
  let mid = Petri.Builder.add_place b "mid" in
  let qa = Petri.Builder.add_place b "qa" in
  let qc = Petri.Builder.add_place b "qc" in
  let _ =
    Petri.Builder.add_transition b "tick"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (src, 1) ] ~outputs:[ (mid, 1) ]
  in
  let _ =
    Petri.Builder.add_transition b "a" (Petri.Immediate 1.) ~inputs:[ (mid, 1) ]
      ~outputs:[ (qa, 1) ]
  in
  let _ =
    Petri.Builder.add_transition b "c" (Petri.Immediate 3.) ~inputs:[ (mid, 1) ]
      ~outputs:[ (qc, 1) ]
  in
  let da =
    Petri.Builder.add_transition b "da"
      (Petri.Timed (Variate.Exponential 2.))
      ~inputs:[ (qa, 1) ] ~outputs:[ (src, 1) ]
  in
  let dc =
    Petri.Builder.add_transition b "dc"
      (Petri.Timed (Variate.Exponential 2.))
      ~inputs:[ (qc, 1) ] ~outputs:[ (src, 1) ]
  in
  let net = Petri.Builder.build b in
  let g = Reachability.explore net in
  (* tangible states: token in src, qa, or qc *)
  Alcotest.(check int) "three tangible states" 3 (Reachability.num_states g);
  let pi = Reachability.steady_state g in
  let ra = Reachability.throughput g ~pi da in
  let rc = Reachability.throughput g ~pi dc in
  close ~eps:1e-9 "split 1:3" 3. (rc /. ra)

let test_reachability_unbounded_detected () =
  let b = Petri.Builder.create () in
  let p = Petri.Builder.add_place b ~initial:1 "p" in
  let _ =
    Petri.Builder.add_transition b "grow"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (p, 1) ]
      ~outputs:[ (p, 2) ]
  in
  let net = Petri.Builder.build b in
  Alcotest.(check bool) "unbounded raises" true
    (try
       ignore (Reachability.explore ~max_states:100 net);
       false
     with Reachability.Unbounded _ -> true)

let test_reachability_rejects_non_exponential () =
  let b = Petri.Builder.create () in
  let p = Petri.Builder.add_place b ~initial:1 "p" in
  let _ =
    Petri.Builder.add_transition b "d"
      (Petri.Timed (Variate.Deterministic 1.))
      ~inputs:[ (p, 1) ] ~outputs:[ (p, 1) ]
  in
  let net = Petri.Builder.build b in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Reachability.explore net);
       false
     with Invalid_argument _ -> true)

let test_simulation_matches_reachability () =
  (* The token-game simulator must agree with the exact tangible-chain
     solution on a nontrivial net (shared server, two flows). *)
  let b = Petri.Builder.create () in
  let idle = Petri.Builder.add_place b ~initial:1 "idle" in
  let qa = Petri.Builder.add_place b ~initial:1 "qa" in
  let qb = Petri.Builder.add_place b ~initial:1 "qb" in
  let sa = Petri.Builder.add_place b "sa" in
  let sb = Petri.Builder.add_place b "sb" in
  let _ =
    Petri.Builder.add_transition b "grab_a" (Petri.Immediate 1.)
      ~inputs:[ (qa, 1); (idle, 1) ] ~outputs:[ (sa, 1) ]
  in
  let _ =
    Petri.Builder.add_transition b "grab_b" (Petri.Immediate 1.)
      ~inputs:[ (qb, 1); (idle, 1) ] ~outputs:[ (sb, 1) ]
  in
  let serve_a =
    Petri.Builder.add_transition b "serve_a"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (sa, 1) ]
      ~outputs:[ (idle, 1); (qa, 1) ]
  in
  let _ =
    Petri.Builder.add_transition b "serve_b"
      (Petri.Timed (Variate.Exponential 2.))
      ~inputs:[ (sb, 1) ]
      ~outputs:[ (idle, 1); (qb, 1) ]
  in
  let net = Petri.Builder.build b in
  let g = Reachability.explore net in
  let pi = Reachability.steady_state g in
  let exact_rate = Reachability.throughput g ~pi serve_a in
  let stats = Simulation.simulate ~seed:3 ~warmup:1_000. ~horizon:200_000. net in
  let sim_rate = stats.Simulation.rates.(serve_a) in
  if abs_float (sim_rate -. exact_rate) /. exact_rate > 0.03 then
    Alcotest.failf "shared server: sim %g vs exact %g" sim_rate exact_rate

(* ------------------------------------------------------------------ *)
(* Infinite-server transitions *)

let mmc_net ~servers =
  (* N customers, exponential think (as an infinite-server transition),
     then a c-server pool modelled with an idle place + infinite-server
     serve: the grab/serve idiom from Mms_stpn in miniature. *)
  let b = Petri.Builder.create () in
  let thinking = Petri.Builder.add_place b ~initial:6 "thinking" in
  let queue = Petri.Builder.add_place b "queue" in
  let idle = Petri.Builder.add_place b ~initial:servers "idle" in
  let busy = Petri.Builder.add_place b "busy" in
  let _think =
    Petri.Builder.add_transition b "think"
      (Petri.Timed_infinite (Variate.Exponential 3.))
      ~inputs:[ (thinking, 1) ]
      ~outputs:[ (queue, 1) ]
  in
  let _grab =
    Petri.Builder.add_transition b "grab" (Petri.Immediate 1.)
      ~inputs:[ (queue, 1); (idle, 1) ]
      ~outputs:[ (busy, 1) ]
  in
  let serve =
    Petri.Builder.add_transition b "serve"
      (Petri.Timed_infinite (Variate.Exponential 2.))
      ~inputs:[ (busy, 1) ]
      ~outputs:[ (thinking, 1); (idle, 1) ]
  in
  (Petri.Builder.build b, serve)

let closed_mmc_throughput ~servers =
  let nw =
    Lattol_queueing.Network.make
      ~stations:
        [| ("think", Lattol_queueing.Network.Delay);
           ("pool", Lattol_queueing.Network.Multi_server servers) |]
      ~classes:
        [|
          {
            Lattol_queueing.Network.class_name = "jobs";
            population = 6;
            visits = [| 1.; 1. |];
            service = [| 3.; 2. |];
          };
        |]
  in
  (Lattol_queueing.Convolution.solve nw).Lattol_queueing.Solution.throughput.(0)

let test_infinite_server_reachability_exact () =
  List.iter
    (fun servers ->
      let net, serve = mmc_net ~servers in
      let g = Reachability.explore net in
      let pi = Reachability.steady_state g in
      close ~eps:1e-8
        (Printf.sprintf "throughput c=%d" servers)
        (closed_mmc_throughput ~servers)
        (Reachability.throughput g ~pi serve))
    [ 1; 2; 3 ]

let test_infinite_server_simulation () =
  let net, serve = mmc_net ~servers:2 in
  let stats = Simulation.simulate ~seed:11 ~warmup:500. ~horizon:100_000. net in
  let exact = closed_mmc_throughput ~servers:2 in
  let sim = stats.Simulation.rates.(serve) in
  if abs_float (sim -. exact) /. exact > 0.03 then
    Alcotest.failf "infinite-server sim %g vs exact %g" sim exact

let test_enabling_degree () =
  let net, _ = mmc_net ~servers:2 in
  let marking = Petri.initial_marking net in
  (* think has 6 tokens -> degree 6; serve has 0 busy -> degree 0 *)
  Alcotest.(check int) "think degree" 6 (Petri.enabling_degree net ~marking 0);
  Alcotest.(check int) "serve degree" 0 (Petri.enabling_degree net ~marking 2)

let test_deadlock_detection () =
  (* A net that drains into an empty-enabled state deadlocks. *)
  let b = Petri.Builder.create () in
  let p0 = Petri.Builder.add_place b ~initial:1 "p0" in
  let p1 = Petri.Builder.add_place b "p1" in
  let _ =
    Petri.Builder.add_transition b "move"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (p0, 1) ]
      ~outputs:[ (p1, 1) ]
  in
  let _ =
    (* needs two tokens it can never have: p1 holds at most one *)
    Petri.Builder.add_transition b "stuck"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (p1, 2) ]
      ~outputs:[ (p0, 2) ]
  in
  let net = Petri.Builder.build b in
  let g = Reachability.explore net in
  Alcotest.(check int) "one dead marking" 1 (List.length (Reachability.deadlocks g))

let test_mms_stpn_deadlock_free () =
  (* The paper's assumption, verified structurally on small machines. *)
  List.iter
    (fun p ->
      let lay = Mms_stpn.build p in
      let g = Reachability.explore ~max_states:50_000 lay.Mms_stpn.net in
      Alcotest.(check (list int)) "no deadlocks" [] (Reachability.deadlocks g))
    [
      { Params.default with Params.k = 1; n_t = 3; p_remote = 0. };
      { Params.default with Params.k = 1; n_t = 2; p_remote = 0.; mem_ports = 2 };
    ]

(* ------------------------------------------------------------------ *)
(* Mms_stpn *)

let test_mms_stpn_structure () =
  let layout = Mms_stpn.build { Params.default with Params.k = 2; n_t = 2 } in
  let net = layout.Mms_stpn.net in
  Alcotest.(check bool) "has places" true (Petri.num_places net > 20);
  (* per-node thread-count P-invariants *)
  Array.iter
    (fun places ->
      let weights = Array.make (Petri.num_places net) 0. in
      List.iter (fun pl -> weights.(pl) <- 1.) places;
      Alcotest.(check bool) "thread conservation" true
        (Petri.is_invariant net ~weights))
    layout.Mms_stpn.thread_places;
  (* server idle-token invariants: idle + its in-service stages = 1; the
     in-service stages are exactly the thread places named ".s" — covered
     indirectly by simulation conservation below. *)
  Alcotest.(check int) "ready initial marking" 2
    (Petri.initial_marking net).(layout.Mms_stpn.ready.(0))

let test_mms_stpn_exact_repairman () =
  (* k = 1, p_remote = 0: processor + memory cycle; exact tangible chain
     equals exact MVA. *)
  let p = { Params.default with Params.k = 1; n_t = 3; p_remote = 0. } in
  let stpn = Mms_stpn.exact p in
  let mva = Mms.solve ~solver:Mms.Exact_mva p in
  close ~eps:1e-8 "U_p" mva.Measures.u_p stpn.Measures.u_p;
  close ~eps:1e-8 "lambda" mva.Measures.lambda stpn.Measures.lambda;
  close ~eps:1e-7 "L_obs" mva.Measures.l_obs stpn.Measures.l_obs

let test_mms_stpn_sim_vs_exact_mva () =
  (* k = 2 MMS: STPN simulation against the exact product-form solution. *)
  let p = { Params.default with Params.k = 2; n_t = 2; p_remote = 0.5 } in
  let r = Mms_stpn.run ~horizon:50_000. p in
  let m = r.Mms_stpn.measures in
  let e = Mms.solve ~solver:Mms.Exact_mva p in
  let rel a b = abs_float (a -. b) /. b in
  if rel m.Measures.u_p e.Measures.u_p > 0.03 then
    Alcotest.failf "U_p stpn %g vs exact %g" m.Measures.u_p e.Measures.u_p;
  if rel m.Measures.lambda_net e.Measures.lambda_net > 0.03 then
    Alcotest.failf "lambda_net stpn %g vs exact %g" m.Measures.lambda_net
      e.Measures.lambda_net;
  if rel m.Measures.s_obs e.Measures.s_obs > 0.06 then
    Alcotest.failf "S_obs stpn %g vs exact %g" m.Measures.s_obs e.Measures.s_obs

let test_mms_stpn_figure11_band () =
  (* The paper's validation bands: lambda_net within 2%, S_obs within 5% of
     the model at p_remote = 0.5 on the 4x4 machine. *)
  let p = { Params.default with Params.p_remote = 0.5; n_t = 4 } in
  let r = Mms_stpn.run ~horizon:20_000. p in
  let m = r.Mms_stpn.measures in
  let model = Mms.solve p in
  let rel a b = abs_float (a -. b) /. b in
  if rel m.Measures.lambda_net model.Measures.lambda_net > 0.04 then
    Alcotest.failf "lambda_net %g vs %g" m.Measures.lambda_net
      model.Measures.lambda_net;
  if rel m.Measures.s_obs model.Measures.s_obs > 0.08 then
    Alcotest.failf "S_obs %g vs %g" m.Measures.s_obs model.Measures.s_obs

let test_mms_stpn_multiport_exact () =
  (* k = 1 with a dual-ported memory: exact tangible chain equals the
     brute-force CTMC of the corresponding Multi_server network. *)
  let p =
    { Params.default with Params.k = 1; n_t = 4; p_remote = 0.; mem_ports = 2 }
  in
  let stpn = Mms_stpn.exact p in
  let ctmc = Lattol_markov.Qn_ctmc.solve (Mms.build_network p) in
  close ~eps:1e-8 "lambda" ctmc.Lattol_queueing.Solution.throughput.(0)
    stpn.Measures.lambda

let test_mms_stpn_deterministic_memory_sensitivity () =
  (* The paper's Section 8 check: switching L from exponential to
     deterministic moves S_obs by less than 10%. *)
  let p = { Params.default with Params.k = 2; n_t = 3; p_remote = 0.5 } in
  let exp_run = Mms_stpn.run ~horizon:30_000. p in
  let det_run =
    Mms_stpn.run ~horizon:30_000. ~memory:Mms_stpn.Deterministic_memory p
  in
  let a = exp_run.Mms_stpn.measures.Measures.s_obs in
  let b = det_run.Mms_stpn.measures.Measures.s_obs in
  if abs_float (a -. b) /. a > 0.10 then
    Alcotest.failf "deterministic L moved S_obs %g -> %g (> 10%%)" a b

let test_mms_stpn_validation () =
  Alcotest.(check bool) "L = 0 rejected" true
    (try
       ignore (Mms_stpn.build { Params.default with Params.l_mem = 0. });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "n_t = 0 rejected" true
    (try
       ignore (Mms_stpn.build { Params.default with Params.n_t = 0 });
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "SU rejected" true
    (try
       ignore (Mms_stpn.build { Params.default with Params.sync_unit = 0.5 });
       false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Invariant discovery *)

let test_invariants_two_phase () =
  let net, _, _, _, _ = two_phase ~m0:3 ~to1:1. ~to0:2. in
  match Invariants.p_semiflows net with
  | [ w ] ->
    Alcotest.(check (array int)) "single conservation law" [| 1; 1 |] w;
    Alcotest.(check int) "conserved total" 3
      (Invariants.conserved_total net ~weights:w)
  | flows -> Alcotest.failf "expected 1 semiflow, got %d" (List.length flows)

let test_invariants_weighted () =
  (* t consumes 2 tokens of a and produces 1 of b; a + 2b is conserved. *)
  let b = Petri.Builder.create () in
  let pa = Petri.Builder.add_place b ~initial:4 "a" in
  let pb = Petri.Builder.add_place b "b" in
  let _ =
    Petri.Builder.add_transition b "fwd"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (pa, 2) ]
      ~outputs:[ (pb, 1) ]
  in
  let _ =
    Petri.Builder.add_transition b "bwd"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (pb, 1) ]
      ~outputs:[ (pa, 2) ]
  in
  let net = Petri.Builder.build b in
  match Invariants.p_semiflows net with
  | [ w ] -> Alcotest.(check (array int)) "a + 2b" [| 1; 2 |] w
  | flows -> Alcotest.failf "expected 1 semiflow, got %d" (List.length flows)

let test_invariants_discover_mms_structure () =
  (* The MMS STPN's conservation laws should be found automatically: one
     per node's threads plus one per server, and every place covered. *)
  let p = { Params.default with Params.k = 2; n_t = 2; p_remote = 0.5 } in
  let lay = Mms_stpn.build p in
  let net = lay.Mms_stpn.net in
  let flows = Invariants.p_semiflows ~max_rows:100_000 net in
  (* 4 thread laws + 4 memory + 4 outbound + 4 inbound = 16 *)
  Alcotest.(check int) "16 conservation laws" 16 (List.length flows);
  List.iter
    (fun w ->
      Alcotest.(check bool) "validates" true
        (Petri.is_invariant net ~weights:(Array.map float_of_int w)))
    flows;
  for pl = 0 to Petri.num_places net - 1 do
    if not (Invariants.covers flows ~place:pl) then
      Alcotest.failf "place %s not covered" (Petri.place_name net pl)
  done;
  (* the thread law for node 0 conserves exactly n_t tokens *)
  let ready0 = lay.Mms_stpn.ready.(0) in
  let thread_law =
    List.find (fun w -> w.(ready0) > 0) flows
  in
  Alcotest.(check int) "n_t conserved" 2
    (Invariants.conserved_total net ~weights:thread_law)

let test_invariants_row_cap () =
  let p = { Params.default with Params.k = 2; n_t = 2; p_remote = 0.5 } in
  let lay = Mms_stpn.build p in
  Alcotest.(check bool) "cap enforced" true
    (try
       ignore (Invariants.p_semiflows ~max_rows:3 lay.Mms_stpn.net);
       false
     with Invariants.Too_many_rows _ -> true)

let test_t_semiflows_cycle () =
  (* A ring of transitions has exactly one firing cycle: one of each. *)
  let b = Petri.Builder.create () in
  let places =
    Array.init 3 (fun i ->
        Petri.Builder.add_place b ~initial:(if i = 0 then 1 else 0)
          (Printf.sprintf "p%d" i))
  in
  for i = 0 to 2 do
    ignore
      (Petri.Builder.add_transition b
         (Printf.sprintf "t%d" i)
         (Petri.Timed (Variate.Exponential 1.))
         ~inputs:[ (places.(i), 1) ]
         ~outputs:[ (places.((i + 1) mod 3), 1) ])
  done;
  let net = Petri.Builder.build b in
  (match Invariants.t_semiflows net with
  | [ x ] ->
    Alcotest.(check (array int)) "one of each" [| 1; 1; 1 |] x;
    Alcotest.(check bool) "reproduces marking" true
      (Invariants.reproduces_marking net ~firings:x)
  | flows -> Alcotest.failf "expected 1 T-semiflow, got %d" (List.length flows));
  Alcotest.(check bool) "partial firing does not reproduce" false
    (Invariants.reproduces_marking net ~firings:[| 1; 1; 0 |])

let test_t_semiflows_mms_access_cycle () =
  (* The single-node machine has exactly one steady-state cycle: execute,
     route locally, grab the memory, serve. *)
  let p = { Params.default with Params.k = 1; n_t = 3; p_remote = 0. } in
  let lay = Mms_stpn.build p in
  match Invariants.t_semiflows lay.Mms_stpn.net with
  | [ x ] ->
    Alcotest.(check bool) "reproduces" true
      (Invariants.reproduces_marking lay.Mms_stpn.net ~firings:x);
    Alcotest.(check int) "four transitions, once each" 4
      (Array.fold_left ( + ) 0 x)
  | flows -> Alcotest.failf "expected 1 cycle, got %d" (List.length flows)

let test_invariants_unbounded_net_has_uncovered_place () =
  let b = Petri.Builder.create () in
  let src = Petri.Builder.add_place b ~initial:1 "src" in
  let sink = Petri.Builder.add_place b "sink" in
  let _ =
    Petri.Builder.add_transition b "gen"
      (Petri.Timed (Variate.Exponential 1.))
      ~inputs:[ (src, 1) ]
      ~outputs:[ (src, 1); (sink, 1) ]
  in
  let net = Petri.Builder.build b in
  let flows = Invariants.p_semiflows net in
  Alcotest.(check bool) "sink uncovered" false
    (Invariants.covers flows ~place:sink)

(* ------------------------------------------------------------------ *)
(* Properties *)

let prop_invariant_detects_conservation =
  QCheck.Test.make ~name:"cycle nets conserve tokens" ~count:50
    QCheck.(pair (int_range 2 6) (int_range 1 5))
    (fun (stages, tokens) ->
      (* ring of [stages] places, token moves around *)
      let b = Petri.Builder.create () in
      let places =
        Array.init stages (fun i ->
            Petri.Builder.add_place b
              ~initial:(if i = 0 then tokens else 0)
              (Printf.sprintf "p%d" i))
      in
      for i = 0 to stages - 1 do
        ignore
          (Petri.Builder.add_transition b
             (Printf.sprintf "t%d" i)
             (Petri.Timed (Variate.Exponential 1.))
             ~inputs:[ (places.(i), 1) ]
             ~outputs:[ (places.((i + 1) mod stages), 1) ])
      done;
      let net = Petri.Builder.build b in
      Petri.is_invariant net ~weights:(Array.make stages 1.))

let prop_simulation_conserves_ring_tokens =
  QCheck.Test.make ~name:"simulated ring keeps total place mean = tokens"
    ~count:10
    QCheck.(pair (int_range 2 5) (int_range 1 4))
    (fun (stages, tokens) ->
      let b = Petri.Builder.create () in
      let places =
        Array.init stages (fun i ->
            Petri.Builder.add_place b
              ~initial:(if i = 0 then tokens else 0)
              (Printf.sprintf "p%d" i))
      in
      for i = 0 to stages - 1 do
        ignore
          (Petri.Builder.add_transition b
             (Printf.sprintf "t%d" i)
             (Petri.Timed (Variate.Exponential 1.))
             ~inputs:[ (places.(i), 1) ]
             ~outputs:[ (places.((i + 1) mod stages), 1) ])
      done;
      let net = Petri.Builder.build b in
      let stats = Simulation.simulate ~horizon:5_000. net in
      let total = Array.fold_left ( +. ) 0. stats.Simulation.place_mean in
      abs_float (total -. float_of_int tokens) < 1e-6)

let qcheck tests = List.map QCheck_alcotest.to_alcotest tests

let () =
  Alcotest.run "lattol_petri"
    [
      ( "structure",
        [
          Alcotest.test_case "builder" `Quick test_builder_basic;
          Alcotest.test_case "fire semantics" `Quick test_fire_semantics;
          Alcotest.test_case "builder validation" `Quick test_builder_validation;
          Alcotest.test_case "invariants" `Quick test_invariants;
        ] );
      ( "simulation",
        [
          Alcotest.test_case "two-phase occupancy" `Slow test_simulation_two_phase;
          Alcotest.test_case "immediate weights" `Slow test_simulation_immediate_weights;
          Alcotest.test_case "deterministic timing" `Quick
            test_simulation_deterministic_timing;
          Alcotest.test_case "vanishing livelock" `Quick
            test_simulation_vanishing_loop_detected;
        ] );
      ( "reachability",
        [
          Alcotest.test_case "two-phase vs CTMC" `Quick
            test_reachability_two_phase_vs_ctmc;
          Alcotest.test_case "vanishing elimination" `Quick
            test_reachability_vanishing_elimination;
          Alcotest.test_case "unbounded detection" `Quick
            test_reachability_unbounded_detected;
          Alcotest.test_case "non-exponential rejected" `Quick
            test_reachability_rejects_non_exponential;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "MMS deadlock-free" `Quick test_mms_stpn_deadlock_free;
          Alcotest.test_case "simulation vs reachability" `Slow
            test_simulation_matches_reachability;
        ] );
      ( "infinite-server",
        [
          Alcotest.test_case "reachability exact (c=1,2,3)" `Quick
            test_infinite_server_reachability_exact;
          Alcotest.test_case "simulation" `Slow test_infinite_server_simulation;
          Alcotest.test_case "enabling degree" `Quick test_enabling_degree;
        ] );
      ( "mms-stpn",
        [
          Alcotest.test_case "structure + invariants" `Quick test_mms_stpn_structure;
          Alcotest.test_case "exact repairman" `Quick test_mms_stpn_exact_repairman;
          Alcotest.test_case "sim vs exact MVA (k=2)" `Slow
            test_mms_stpn_sim_vs_exact_mva;
          Alcotest.test_case "figure 11 band" `Slow test_mms_stpn_figure11_band;
          Alcotest.test_case "multiport exact" `Quick test_mms_stpn_multiport_exact;
          Alcotest.test_case "deterministic-L sensitivity" `Slow
            test_mms_stpn_deterministic_memory_sensitivity;
          Alcotest.test_case "validation" `Quick test_mms_stpn_validation;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "two-phase" `Quick test_invariants_two_phase;
          Alcotest.test_case "weighted law" `Quick test_invariants_weighted;
          Alcotest.test_case "discovers MMS structure" `Quick
            test_invariants_discover_mms_structure;
          Alcotest.test_case "row cap" `Quick test_invariants_row_cap;
          Alcotest.test_case "unbounded uncovered" `Quick
            test_invariants_unbounded_net_has_uncovered_place;
          Alcotest.test_case "T-semiflow ring" `Quick test_t_semiflows_cycle;
          Alcotest.test_case "T-semiflow MMS access cycle" `Quick
            test_t_semiflows_mms_access_cycle;
        ] );
      ( "properties",
        qcheck
          [ prop_invariant_detects_conservation; prop_simulation_conserves_ring_tokens ]
      );
    ]
