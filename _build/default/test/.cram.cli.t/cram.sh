  $ ../bin/mms_cli.exe bottleneck
  $ ../bin/mms_cli.exe solve -k 2 --threads 2 --p-remote 0.5
  $ ../bin/mms_cli.exe tolerance -k 2 --threads 2 --p-remote 0.5 | tail -n 2
  $ ../bin/mms_cli.exe sweep --param n_t --from 1 --to 3 --steps 3 -k 2 | head -n 2
  $ ../bin/mms_cli.exe solve --p-remote 1.5 2>&1 | head -n 1
  $ ../bin/mms_cli.exe solve --solver magic 2>&1 | head -n 2 | tr -s ' '
  $ ../bin/mms_cli.exe kernels -k 2 --threads 2 -R 2 | head -n 5
  $ ../bin/mms_cli.exe report -k 2 --threads 2 | grep verdict
