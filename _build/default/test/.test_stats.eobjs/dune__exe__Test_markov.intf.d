test/test_markov.mli:
