test/test_petri.mli:
