test/test_topology.ml: Access Alcotest Array Float Lattol_topology List Printf QCheck QCheck_alcotest Topology
