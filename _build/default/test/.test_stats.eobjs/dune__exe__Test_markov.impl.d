test/test_markov.ml: Alcotest Array Gen Lattol_markov Lattol_queueing List Mva Network Printf QCheck QCheck_alcotest Solution
