test/test_queueing.mli:
