test/test_queueing.ml: Alcotest Amva Array Bounds Convolution Gen Jackson Lattol_markov Lattol_queueing Linearizer List Mva Network Printf Priority_mm1 QCheck QCheck_alcotest Solution String
