test/test_stats.ml: Alcotest Array Ascii_plot Confidence Float Gen Histogram Lattol_stats List Moments Prng QCheck QCheck_alcotest Result String Variate
