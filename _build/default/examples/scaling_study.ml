(* Scaling study: the architect's view (paper Section 7).

   Scale the torus from 2x2 to 10x10 and compare remote-access patterns.
   Under geometric locality the average hop count stays bounded
   (d_avg -> 1/(1 - p_sw)) and throughput scales almost linearly; under a
   uniform pattern d_avg grows with k and the network becomes the
   bottleneck.  The study also prints the ideal-network (S = 0) system to
   expose the memory-contention effect of removing switch delays.

     dune exec examples/scaling_study.exe
*)

open Lattol_core
open Lattol_topology

let () =
  let base = Params.default in
  let ks = [ 2; 4; 6; 8; 10 ] in
  let patterns = [ Access.Geometric 0.5; Access.Uniform ] in
  Format.printf
    "Scaling the machine at n_t = %d, R = %g, p_remote = %g@.@." base.Params.n_t
    base.Params.runlength base.Params.p_remote;
  let points = Scaling.sweep base ~ks ~patterns in
  List.iter (fun pt -> Format.printf "  %a@." Scaling.pp_point pt) points;

  (* Summaries the paper draws from this sweep. *)
  let geo k = Scaling.evaluate base ~k (Access.Geometric 0.5) in
  let uni k = Scaling.evaluate base ~k Access.Uniform in
  let g10 = geo 10 and u10 = uni 10 and g2 = geo 2 in
  Format.printf "@.Observations:@.";
  Format.printf
    "  1. Patterns coincide on the smallest machine (tol %.3f vs %.3f at k=2).@."
    g2.Scaling.tol_network (uni 2).Scaling.tol_network;
  Format.printf
    "  2. At k=10 the geometric pattern retains tol_network = %.3f while@.\
    \     uniform drops to %.3f — locality, not raw switch speed, decides@.\
    \     whether the network latency is tolerated.@."
    g10.Scaling.tol_network u10.Scaling.tol_network;
  Format.printf
    "  3. Throughput at k=10: geometric %.1f vs uniform %.1f (ideal network \
     %.1f).@."
    g10.Scaling.throughput u10.Scaling.throughput g10.Scaling.throughput_ideal;
  Format.printf
    "  4. Removing the network entirely (S = 0) raises memory latency from \
     %.2f to %.2f:@.\
    \     finite switch delays pace remote traffic like pipeline stages and \
     relieve@.\
    \     the memory modules (the paper's Figure 10(b)).@."
    g10.Scaling.measures.Measures.l_obs
    g10.Scaling.ideal_network.Measures.l_obs;

  (* How many threads does the bigger machine need?  (Paper: the n_t needed
     to tolerate the network latency does not change with machine size.) *)
  Format.printf "@.Threads needed for tol_network >= 0.9 (geometric):@.";
  List.iter
    (fun k ->
      match
        Tolerance.threads_needed ~target:0.9 ~max_threads:12
          Tolerance.Network_latency { base with Params.k }
      with
      | Some nt -> Format.printf "  k = %2d: n_t = %d@." k nt
      | None -> Format.printf "  k = %2d: > 12@." k)
    ks
