(* From source code to tolerance: choosing a data distribution for a
   stencil loop.

   The paper's introduction casts the compiler's problem as choosing "a
   suitable computation decomposition and data distribution".  Here a
   3-point stencil (a[i-1], a[i], a[i+1]) over a distributed array is
   mapped onto the 4x4 machine under block, cyclic and block-cyclic
   layouts; the induced remote-access matrix is fed to the model as an
   explicit pattern and the tolerance index ranks the layouts.

     dune exec examples/stencil_loop.exe
*)

open Lattol_core

let () =
  let base = { Params.default with Params.n_t = 4 } in
  let elements = 4096 in
  let stencil = [ -1; 0; 1 ] in
  Format.printf
    "do-all i in 0..%d: a[i] = f(a[i-1], a[i], a[i+1])   (%g cycles per access)@.\
     machine: %a@.@."
    (elements - 1) 2. Params.pp base;
  let results =
    Workload.compare_distributions ~base ~elements ~stencil ~work_per_access:2.
      [ Workload.Block; Workload.Block_cyclic 64; Workload.Block_cyclic 4; Workload.Cyclic ]
  in
  Format.printf "  %-18s %9s %7s %8s %8s %8s %9s@." "distribution" "p_remote"
    "d_avg" "~p_sw" "U_p" "tol_net" "S_obs";
  List.iter
    (fun (d, ch, m, tol) ->
      Format.printf "  %-18s %9.4f %7.3f %8s %8.4f %8.4f %9.3f@."
        (Workload.distribution_to_string d)
        ch.Workload.p_remote_mean ch.Workload.d_avg
        (match ch.Workload.fitted_p_sw with
        | Some v -> Printf.sprintf "%.3f" v
        | None -> "-")
        m.Measures.u_p tol
        m.Measures.s_obs)
    results;
  Format.printf
    "@.Block layouts keep the stencil's halo exchanges to a sliver of \
     accesses@.(p_remote ~ 2/chunk), so the network latency is fully \
     tolerated; a cyclic@.layout turns two of every three accesses remote \
     and pays for it in U_p.@.@.";
  (* A compiler can also recover the paper's two-parameter abstraction. *)
  let loop =
    { Workload.elements; distribution = Workload.Cyclic; stencil;
      work_per_access = 2. }
  in
  let ch = Workload.characterize loop (Params.make_topology base) in
  (match ch.Workload.fitted_p_sw with
  | Some p_sw ->
    let fitted =
      {
        base with
        Params.runlength = 2.;
        p_remote = ch.Workload.p_remote_mean;
        pattern = Lattol_topology.Access.Geometric p_sw;
      }
    in
    let explicit = Workload.to_params ~base loop in
    Format.printf
      "Geometric fit of the cyclic layout: p_remote=%.3f, p_sw=%.3f ->@.\
    \  U_p exact matrix = %.4f vs fitted two-parameter model = %.4f@."
      ch.Workload.p_remote_mean p_sw
      (Mms.solve explicit).Measures.u_p
      (Mms.solve fitted).Measures.u_p
  | None -> Format.printf "no geometric fit available@.")
