(* Mixed workloads: what batch traffic does to interactive threads.

   The paper's SPMD model gives every thread the same behaviour; this
   example uses the underlying multi-class machinery to mix two kinds on
   every processor — short, mostly-local interactive threads and long,
   remote-heavy batch threads — and asks how much network latency the
   interactive kind absorbs from its neighbours' traffic.

     dune exec examples/mixed_workload.exe
*)

open Lattol_core
open Lattol_topology

let interactive =
  { Hetero.name = "interactive"; count = 2; runlength = 0.5; p_remote = 0.1;
    pattern = Access.Geometric 0.5 }

let batch count p_remote =
  { Hetero.name = "batch"; count; runlength = 2.; p_remote;
    pattern = Access.Uniform }

let () =
  let base = Params.default in
  Format.printf
    "Every processor runs 2 interactive threads (R = 0.5, 10%% remote,@.\
     geometric) next to a growing batch load (R = 2, uniform remote).@.@.";
  Format.printf "Interactive threads alone:@.";
  let alone = Hetero.solve ~base [ interactive ] in
  List.iter (fun g -> Format.printf "  %a@." Hetero.pp_group g) alone.Hetero.groups;
  let s_alone =
    (List.hd alone.Hetero.groups).Hetero.s_obs
  in
  Format.printf "@.Adding batch threads (50%% remote):@.";
  List.iter
    (fun count ->
      let mixed = Hetero.solve ~base [ interactive; batch count 0.5 ] in
      let i = List.hd mixed.Hetero.groups in
      let b = List.nth mixed.Hetero.groups 1 in
      Format.printf
        "  +%d batch: interactive S_obs %.2f (%.1fx alone), lambda %.3f; \
         batch lambda %.3f; U_p %.3f@."
        count i.Hetero.s_obs
        (i.Hetero.s_obs /. s_alone)
        i.Hetero.lambda b.Hetero.lambda mixed.Hetero.u_p)
    [ 1; 2; 4; 6 ];
  Format.printf
    "@.The interactive kind's own parameters never change; its observed@.\
     network latency multiplies anyway — interference is a first-class@.\
     effect the single-class model cannot express.@.@.";
  (* A remedy the model can evaluate: keep batch local. *)
  Format.printf "Same batch load with good locality (20%% remote, geometric):@.";
  let local_batch =
    { (batch 6 0.2) with Hetero.pattern = Access.Geometric 0.5 }
  in
  let mixed = Hetero.solve ~base [ interactive; local_batch ] in
  List.iter (fun g -> Format.printf "  %a@." Hetero.pp_group g) mixed.Hetero.groups;
  Format.printf "  total U_p = %.3f@." mixed.Hetero.u_p
