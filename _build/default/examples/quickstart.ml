(* Quickstart: evaluate one multithreaded machine and read the tolerance
   indices.

   Build a 4x4 torus with the paper's default workload, solve the
   analytical model, print the performance measures and ask the central
   question of the paper: are the network and memory latencies tolerated?

     dune exec examples/quickstart.exe
*)

open Lattol_core

let () =
  (* The paper's Table 1 machine: 16 processors, 8 threads each, runlength
     1, 20% remote accesses with geometric locality (p_sw = 0.5), unit
     memory and switch times. *)
  let params = Params.default in
  Format.printf "Machine under analysis:@.  %a@.@." Params.pp params;

  (* Closed-form bottleneck analysis — no solving needed (Eqs. 4 and 5). *)
  let b = Bottleneck.analyze params in
  Format.printf "Bottleneck analysis:@.  %a@.@." Bottleneck.pp b;

  (* Solve the closed queueing network (approximate MVA; exact symmetric
     fixed point in O(P) per sweep). *)
  let m = Mms.solve params in
  Format.printf "Model solution:@.  %a@.@." Measures.pp m;

  (* The paper's metric: how close is this machine to one with an ideal
     network / an ideal memory? *)
  let net = Tolerance.network params in
  let mem = Tolerance.memory params in
  Format.printf "Tolerance indices:@.  %a@.  %a@.@." Tolerance.pp_report net
    Tolerance.pp_report mem;

  (* A compiler-style takeaway: where is the knee for this machine? *)
  Format.printf
    "Guidance: keep p_remote below %.2f (Eq. 5) and expect no more than \
     %.2f messages per cycle per processor on the network (Eq. 4).@."
    b.Bottleneck.p_remote_critical b.Bottleneck.lambda_net_saturation
