(* Architect's trade-off study: spending a fixed transistor/pin budget.

   The paper positions the tolerance index as the architect's tool for
   finding which subsystem to tune.  This example walks the main design
   axes the paper raises for a 64-processor machine:

   - network dimensionality (Section 2's 2-D choice vs ring and cube),
   - memory multiporting (Section 7's suggestion),
   - switch speed,
   - and, from footnote 4, how cache contention caps the useful thread
     count.

     dune exec examples/architect_tradeoffs.exe
*)

open Lattol_core
open Lattol_topology

let line = String.make 78 '-'

let () =
  (* A 64-processor machine under a moderately hostile workload: uniform
     remote accesses, 40% remote. *)
  let base =
    { Params.default with Params.p_remote = 0.4; pattern = Access.Uniform }
  in
  Format.printf "Design study: P = 64, uniform pattern, p_remote = %g@.%s@."
    base.Params.p_remote line;

  Format.printf "@.1. Network dimensionality (same P, same switch):@.";
  List.iter
    (fun (k, d, name) ->
      let p = { base with Params.k; dimensions = d } in
      let m = Mms.solve p in
      let sens = Sensitivity.ranked p in
      let top = List.hd sens in
      Format.printf
        "   %-12s U_p = %.4f, S_obs = %6.2f; most sensitive knob: %s@." name
        m.Measures.u_p m.Measures.s_obs top.Sensitivity.param)
    [ (64, 1, "ring"); (8, 2, "2-D torus"); (4, 3, "3-D torus") ];

  Format.printf "@.2. Memory ports on the 8x8 torus:@.";
  List.iter
    (fun ports ->
      let p = { base with Params.k = 8; mem_ports = ports } in
      let m = Mms.solve p in
      let mem = Tolerance.memory p in
      Format.printf "   %d port(s): U_p = %.4f, L_obs = %.3f, tol_mem = %.4f@."
        ports m.Measures.u_p m.Measures.l_obs mem.Tolerance.tol)
    [ 1; 2; 4 ];

  Format.printf "@.3. Switch speed on the 8x8 torus (S halves each row):@.";
  List.iter
    (fun s ->
      let p = { base with Params.k = 8; s_switch = s } in
      let m = Mms.solve p in
      let net = Tolerance.network ~ideal_method:Tolerance.Zero_delay p in
      Format.printf "   S = %-5g U_p = %.4f, S_obs = %6.2f, tol_net = %.4f@." s
        m.Measures.u_p m.Measures.s_obs net.Tolerance.tol)
    [ 1.; 0.5; 0.25 ];

  Format.printf
    "@.4. Threads vs cache contention (footnote 4; 1024-line cache, 256-line \
     working sets):@.";
  let cache = Cache_effects.default in
  let cache_base = { base with Params.k = 8 } in
  List.iter
    (fun pt -> Format.printf "   %a@." Cache_effects.pp_point pt)
    (Cache_effects.sweep cache ~base:cache_base ~n_ts:[ 2; 4; 6; 8; 12 ]);
  let best =
    Cache_effects.best_thread_count cache ~base:cache_base ~max_threads:16
  in
  Format.printf
    "   -> the useful thread count stops at n_t = %d: beyond it the shrinking@.\
    \      runlength costs more than the extra overlap buys (the effect the@.\
    \      paper cites from Agarwal and declines to model).@."
    best.Cache_effects.n_t;

  Format.printf
    "@.Reading: with uniform traffic the network dominates every other knob \
     at@.P = 64 — exactly what the tolerance index is for: it says which \
     subsystem@.to spend on before you spend.@."
