(* Thread partitioning: the compiler's view (paper Sections 5-6).

   A compiler must split a do-all loop across threads.  Exposing the same
   total computation (n_t x R held constant), should it create many short
   threads or a few long ones?  The latency-tolerance analysis answers:
   past n_t > 1, fewer/longer wins, and most of the gain arrives by
   n_t = 4-8.

     dune exec examples/thread_partitioning.exe
*)

open Lattol_core

let line = String.make 78 '-'

let analyze_work base ~work =
  Format.printf "%s@.Work budget n_t x R = %g, p_remote = %g@.%s@." line work
    base.Params.p_remote line;
  let n_ts = [ 1; 2; 4; 8; 16 ] in
  let points = Partitioning.sweep base ~work ~n_ts in
  List.iter (fun pt -> Format.printf "  %a@." Partitioning.pp_point pt) points;
  let best = Partitioning.best points in
  Format.printf "  -> best: n_t = %d, R = %g (U_p = %.4f)@.@."
    best.Partitioning.n_t best.Partitioning.runlength
    best.Partitioning.measures.Measures.u_p

let () =
  Format.printf
    "How should a compiler split a do-all loop into threads?@.\
     Holding exposed computation constant, we sweep the number of threads@.\
     and give each thread R = work / n_t cycles of computation.@.@.";
  (* Low remote traffic: the loop mostly touches local data. *)
  analyze_work { Params.default with Params.p_remote = 0.2 } ~work:8.;
  (* Heavier remote traffic: poor data distribution. *)
  analyze_work { Params.default with Params.p_remote = 0.4 } ~work:8.;
  (* A larger budget: coarse threads tolerate everything. *)
  analyze_work { Params.default with Params.p_remote = 0.4 } ~work:32.;
  Format.printf
    "Reading the tables: tol_net and tol_mem near 1 mean the respective@.\
     subsystem no longer limits the processor; the paper's conclusion is@.\
     that a high runlength with a small number of threads (n_t > 1)@.\
     tolerates latency better than many fine-grain threads.@."
