examples/quickstart.mli:
