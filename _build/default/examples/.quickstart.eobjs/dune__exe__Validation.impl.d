examples/validation.ml: Format Lattol_core Lattol_petri Lattol_sim Measures Mms Params
