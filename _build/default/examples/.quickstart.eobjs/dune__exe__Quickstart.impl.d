examples/quickstart.ml: Bottleneck Format Lattol_core Measures Mms Params Tolerance
