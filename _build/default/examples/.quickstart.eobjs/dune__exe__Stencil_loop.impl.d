examples/stencil_loop.ml: Format Lattol_core Lattol_topology List Measures Mms Params Printf Workload
