examples/thread_partitioning.mli:
