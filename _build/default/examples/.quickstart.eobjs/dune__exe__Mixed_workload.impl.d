examples/mixed_workload.ml: Access Format Hetero Lattol_core Lattol_topology List Params
