examples/stencil_loop.mli:
