examples/architect_tradeoffs.ml: Access Cache_effects Format Lattol_core Lattol_topology List Measures Mms Params Sensitivity String Tolerance
