examples/validation.mli:
