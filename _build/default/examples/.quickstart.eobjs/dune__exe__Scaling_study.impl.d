examples/scaling_study.ml: Access Format Lattol_core Lattol_topology List Measures Params Scaling Tolerance
