examples/scaling_study.mli:
