examples/thread_partitioning.ml: Format Lattol_core List Measures Params Partitioning String
