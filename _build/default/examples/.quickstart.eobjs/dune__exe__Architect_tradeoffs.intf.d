examples/architect_tradeoffs.mli:
