(* Validation: three independent implementations of the same machine
   (paper Section 8).

   The analytical model (approximate MVA over the closed queueing
   network), a direct discrete-event simulation, and a stochastic timed
   Petri net are run on the same configuration and must agree on
   U_p, lambda_net, S_obs and L_obs.

     dune exec examples/validation.exe
*)

open Lattol_core

let row name (m : Measures.t) =
  Format.printf "  %-22s %8.4f %10.4f %10.3f %10.3f@." name m.Measures.u_p
    m.Measures.lambda_net m.Measures.s_obs m.Measures.l_obs

let () =
  let p = { Params.default with Params.p_remote = 0.5; n_t = 4 } in
  Format.printf "Configuration: %a@.@." Params.pp p;
  Format.printf "  %-22s %8s %10s %10s %10s@." "method" "U_p" "lambda_net"
    "S_obs" "L_obs";

  let model = Mms.solve p in
  row "analytical (AMVA)" model;

  let des =
    Lattol_sim.Mms_des.run
      ~config:
        { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 50_000. }
      p
  in
  row "discrete-event sim" des.Lattol_sim.Mms_des.measures;
  let mean, half = des.Lattol_sim.Mms_des.u_p_ci in
  Format.printf "    (DES U_p 95%% CI: %.4f +- %.4f over %d events)@." mean half
    des.Lattol_sim.Mms_des.events;

  let stpn = Lattol_petri.Mms_stpn.run ~horizon:20_000. p in
  row "stochastic Petri net" stpn.Lattol_petri.Mms_stpn.measures;
  Format.printf "    (STPN: %a, %d firings)@." Lattol_petri.Petri.pp
    stpn.Lattol_petri.Mms_stpn.layout.Lattol_petri.Mms_stpn.net
    stpn.Lattol_petri.Mms_stpn.stats.Lattol_petri.Simulation.events;

  (* The paper's sensitivity check: deterministic memory service. *)
  let det =
    Lattol_sim.Mms_des.run
      ~config:
        {
          Lattol_sim.Mms_des.default_config with
          Lattol_sim.Mms_des.horizon = 50_000.;
          mem_model = Lattol_sim.Mms_des.Deterministic;
        }
      p
  in
  row "DES, deterministic L" det.Lattol_sim.Mms_des.measures;
  Format.printf
    "@.The paper reports the model within 2%% of simulation on lambda_net and@.\
     5%% on S_obs, and little sensitivity to the memory service distribution;@.\
     the three implementations above reproduce those bands.@."
