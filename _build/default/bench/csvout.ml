(* Optional CSV emission for the reproduction harness: when the harness is
   run as `bench/main.exe --csv DIR`, every figure/table also lands in
   DIR/<id>.csv for plotting outside the terminal. *)

let directory = ref None

let configure () =
  let rec scan i =
    if i >= Array.length Sys.argv then ()
    else if Sys.argv.(i) = "--csv" && i + 1 < Array.length Sys.argv then begin
      let dir = Sys.argv.(i + 1) in
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      directory := Some dir
    end
    else scan (i + 1)
  in
  scan 1

(* [table "fig4a" ~header emit] calls [emit] with a row writer; rows go to
   <dir>/fig4a.csv when --csv is active and are dropped otherwise. *)
let table name ~header emit =
  match !directory with
  | None ->
    emit (fun _ -> ());
    None
  | Some dir ->
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (String.concat "," header);
    output_char oc '\n';
    let row cells =
      output_string oc (String.concat "," cells);
      output_char oc '\n'
    in
    (try emit row
     with e ->
       close_out_noerr oc;
       raise e);
    close_out oc;
    Some path

let note () =
  match !directory with
  | None -> ()
  | Some dir -> Format.printf "(CSV data written to %s/)@." dir
