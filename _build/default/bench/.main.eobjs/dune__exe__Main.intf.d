bench/main.mli:
