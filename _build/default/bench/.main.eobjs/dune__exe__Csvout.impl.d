bench/csvout.ml: Array Filename Format String Sys
