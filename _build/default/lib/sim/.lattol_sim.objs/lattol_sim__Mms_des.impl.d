lib/sim/mms_des.ml: Access Array Engine Format Lattol_core Lattol_stats Lattol_topology List Measures Moments Option Params Printf Prng Station Topology Trace Variate
