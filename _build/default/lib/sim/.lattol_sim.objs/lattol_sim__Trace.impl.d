lib/sim/trace.ml: Array Float Format Hashtbl Lattol_core Lattol_topology List Option Params Workload
