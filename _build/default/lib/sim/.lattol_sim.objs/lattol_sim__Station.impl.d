lib/sim/station.ml: Array Engine Lattol_stats Moments Prng Queue Variate
