lib/sim/engine.ml: Array Float
