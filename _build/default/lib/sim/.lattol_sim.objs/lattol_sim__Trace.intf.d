lib/sim/trace.mli: Lattol_core Lattol_topology Params Workload
