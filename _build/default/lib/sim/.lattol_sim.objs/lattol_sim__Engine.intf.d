lib/sim/engine.mli:
