lib/sim/mms_des.mli: Lattol_core Measures Params Trace
