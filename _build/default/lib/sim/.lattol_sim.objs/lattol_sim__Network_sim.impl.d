lib/sim/network_sim.ml: Array Engine Lattol_queueing Lattol_stats Network Prng Solution Station Variate
