lib/sim/network_sim.mli: Lattol_queueing Network Solution
