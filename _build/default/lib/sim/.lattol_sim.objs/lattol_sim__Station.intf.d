lib/sim/station.mli: Engine Lattol_stats
