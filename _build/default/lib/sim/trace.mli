(** Execution traces: scripted thread behaviour for the simulator.

    The analytical model and the default simulator describe accesses
    {e statistically} (runlength distribution, access-probability matrix).
    A trace pins them down exactly: each thread carries a script of
    (compute time, target module) steps generated from a concrete program —
    here, the do-all loop and grid workloads of {!Lattol_core.Workload} with
    an owner-computes schedule and round-robin iteration assignment.
    Replaying a trace ({!Mms_des.run_trace}) removes the Markovian
    abstraction entirely, closing the chain
    program -> access pattern -> model against an execution-faithful
    simulation. *)

open Lattol_core

type step = {
  compute : float;              (** processor time before the access *)
  target : Lattol_topology.Topology.node;  (** memory module accessed *)
}

type t

val make : steps:step array array array -> t
(** [steps.(node).(thread)] is that thread's script, replayed cyclically.
    Every node needs at least one thread and every thread at least one
    step; targets are validated against the machine at replay time. *)

val num_nodes : t -> int

val threads_at : t -> node:int -> int

val script : t -> node:int -> thread:int -> step array

val total_steps : t -> int

val of_loop : ?n_t:int -> base:Params.t -> Workload.loop -> t
(** Owner-computes schedule for the 1-D do-all loop: iteration [e] runs on
    [owner e], its stencil accesses become steps of
    [work_per_access] compute each; a node's iterations are dealt
    round-robin over its [n_t] (default: [base]'s) threads.  Nodes that own
    no iterations get one idle self-access step. *)

val of_grid : ?n_t:int -> base:Params.t -> Workload.Grid.t -> t
(** Same for the 2-D grid workload. *)

val access_fractions : t -> node:int -> float array
(** Empirical per-target access fractions of one node's scripts — by
    construction these match the corresponding
    {!Lattol_core.Workload.access_matrix} row. *)
