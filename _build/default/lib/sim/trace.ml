open Lattol_core

type step = {
  compute : float;
  target : Lattol_topology.Topology.node;
}

type t = { steps : step array array array }

let make ~steps =
  if Array.length steps = 0 then invalid_arg "Trace.make: no nodes";
  Array.iteri
    (fun node threads ->
      if Array.length threads = 0 then
        Format.kasprintf invalid_arg "Trace.make: node %d has no threads" node;
      Array.iteri
        (fun thread script ->
          if Array.length script = 0 then
            Format.kasprintf invalid_arg "Trace.make: empty script %d.%d" node
              thread;
          Array.iter
            (fun s ->
              if s.compute < 0. || not (Float.is_finite s.compute) then
                Format.kasprintf invalid_arg
                  "Trace.make: invalid compute time %g" s.compute)
            script)
        threads)
    steps;
  { steps }

let num_nodes t = Array.length t.steps

let threads_at t ~node = Array.length t.steps.(node)

let script t ~node ~thread = t.steps.(node).(thread)

let total_steps t =
  Array.fold_left
    (fun acc threads ->
      Array.fold_left (fun acc s -> acc + Array.length s) acc threads)
    0 t.steps

(* Deal each node's iteration list round-robin over its threads, turning
   every (iteration, per-iteration accesses) into steps. *)
let build_scripts ~num_nodes ~n_t per_node_accesses =
  let steps =
    Array.init num_nodes (fun node ->
        let accesses = per_node_accesses.(node) in
        let buckets = Array.make n_t [] in
        List.iteri
          (fun i access -> buckets.(i mod n_t) <- access :: buckets.(i mod n_t))
          accesses;
        Array.init n_t (fun th ->
            match buckets.(th) with
            | [] ->
              (* Idle thread: a local self-access placeholder keeps the
                 thread structure uniform. *)
              [| { compute = 1.; target = node } |]
            | l -> Array.concat (List.rev_map Array.of_list l)))
  in
  make ~steps

let of_loop ?n_t ~base loop =
  let base = Params.validate_exn base in
  let n_t = Option.value n_t ~default:base.Params.n_t in
  if n_t < 1 then invalid_arg "Trace.of_loop: n_t >= 1";
  let p = Params.num_processors base in
  (match Workload.validate ~num_processors:p loop with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Trace.of_loop: " ^ msg));
  let per_node = Array.make p [] in
  (* Iterations in reverse so the final lists are in program order. *)
  for e = loop.Workload.elements - 1 downto 0 do
    let home = Workload.owner loop ~num_processors:p ~element:e in
    let accesses =
      List.map
        (fun offset ->
          {
            compute = loop.Workload.work_per_access;
            target = Workload.owner loop ~num_processors:p ~element:(e + offset);
          })
        loop.Workload.stencil
    in
    per_node.(home) <- accesses :: per_node.(home)
  done;
  build_scripts ~num_nodes:p ~n_t per_node

let of_grid ?n_t ~base grid =
  let base = Params.validate_exn base in
  let n_t = Option.value n_t ~default:base.Params.n_t in
  if n_t < 1 then invalid_arg "Trace.of_grid: n_t >= 1";
  (match Workload.Grid.validate ~base grid with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Trace.of_grid: " ^ msg));
  let p = Params.num_processors base in
  let per_node = Array.make p [] in
  for row = grid.Workload.Grid.rows - 1 downto 0 do
    for col = grid.Workload.Grid.cols - 1 downto 0 do
      let home = Workload.Grid.owner grid ~base ~row ~col in
      let accesses =
        List.map
          (fun (dr, dc) ->
            {
              compute = grid.Workload.Grid.work_per_access;
              target = Workload.Grid.owner grid ~base ~row:(row + dr) ~col:(col + dc);
            })
          grid.Workload.Grid.stencil
      in
      per_node.(home) <- accesses :: per_node.(home)
    done
  done;
  build_scripts ~num_nodes:p ~n_t per_node

let access_fractions t ~node =
  let counts = Hashtbl.create 16 in
  let total = ref 0 in
  Array.iter
    (fun script ->
      Array.iter
        (fun s ->
          incr total;
          Hashtbl.replace counts s.target
            (1 + Option.value (Hashtbl.find_opt counts s.target) ~default:0))
        script)
    t.steps.(node);
  let max_node =
    Hashtbl.fold (fun target _ acc -> max acc target) counts (num_nodes t - 1)
  in
  Array.init (max_node + 1) (fun target ->
      float_of_int (Option.value (Hashtbl.find_opt counts target) ~default:0)
      /. float_of_int !total)
