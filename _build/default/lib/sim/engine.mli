(** Discrete-event simulation engine.

    A pending-event set (binary heap keyed by time, with a sequence number
    so that simultaneous events fire in schedule order — determinism
    matters for reproducible experiments) plus a simulation clock.  Events
    are plain closures; model components schedule each other. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay].  [delay >= 0]. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; [time] must not be in the past. *)

type handle

val schedule_cancellable : t -> delay:float -> (unit -> unit) -> handle
(** Like {!schedule} but returns a handle usable with {!cancel}. *)

val cancel : t -> handle -> unit
(** Cancels a pending event; a no-op if it already fired or was cancelled. *)

val run : ?until:float -> t -> unit
(** Processes events in time order until the queue empties or the clock
    would pass [until] (the clock then stops exactly at [until]). *)

val step : t -> bool
(** Processes one event; [false] if the queue was empty. *)

val events_processed : t -> int

val pending : t -> int
(** Number of scheduled (non-cancelled) events. *)
