lib/markov/qn_ctmc.ml: Array Ctmc Format Fun Hashtbl Lattol_queueing List
