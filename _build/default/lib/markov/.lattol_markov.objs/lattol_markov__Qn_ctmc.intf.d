lib/markov/qn_ctmc.mli: Lattol_queueing
