lib/markov/ctmc.ml: Array Float Format Hashtbl List Option
