lib/markov/ctmc.mli:
