lib/markov/birth_death.ml: Array Ctmc
