let check ~births ~deaths =
  let n = Array.length births in
  if Array.length deaths <> n then
    invalid_arg "Birth_death: births and deaths must have equal length";
  if n = 0 then invalid_arg "Birth_death: empty chain";
  Array.iter
    (fun r ->
      if r <= 0. then invalid_arg "Birth_death: rates must be positive")
    births;
  Array.iter
    (fun r ->
      if r <= 0. then invalid_arg "Birth_death: rates must be positive")
    deaths;
  n

let steady_state ~births ~deaths =
  let n = check ~births ~deaths in
  let pi = Array.make (n + 1) 1. in
  for i = 0 to n - 1 do
    pi.(i + 1) <- pi.(i) *. births.(i) /. deaths.(i)
  done;
  let total = Array.fold_left ( +. ) 0. pi in
  Array.map (fun p -> p /. total) pi

let to_ctmc ~births ~deaths =
  let n = check ~births ~deaths in
  let chain = Ctmc.create (n + 1) in
  for i = 0 to n - 1 do
    Ctmc.add_rate chain ~src:i ~dst:(i + 1) births.(i);
    Ctmc.add_rate chain ~src:(i + 1) ~dst:i deaths.(i)
  done;
  chain
