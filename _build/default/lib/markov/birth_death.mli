(** Closed-form birth-death chains.

    The classic analytic solutions (M/M/1/N-style product ladders) used as
    an independent oracle for both {!Ctmc.steady_state} and the queueing
    solvers on two-station models. *)

val steady_state : births:float array -> deaths:float array -> float array
(** [steady_state ~births ~deaths] for a chain on states [0..n]:
    [births.(i)] is the rate [i -> i+1] (length [n]), [deaths.(i)] the rate
    [i+1 -> i] (length [n]).  Returns the stationary distribution of length
    [n + 1]. *)

val to_ctmc : births:float array -> deaths:float array -> Ctmc.t
(** Same chain as an explicit {!Ctmc.t} (for cross-checking the solver). *)
