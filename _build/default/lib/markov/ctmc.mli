(** Finite continuous-time Markov chains, sparsely represented.

    This is the "state space technique" the paper contrasts with MVA: exact
    but exponential in model size.  We use it as brute-force ground truth
    for the queueing solvers on deliberately tiny models. *)

type t

val create : int -> t
(** [create n] is a chain with states [0 .. n-1] and no transitions. *)

val num_states : t -> int

val add_rate : t -> src:int -> dst:int -> float -> unit
(** Adds to the transition rate [src -> dst].  [src <> dst], rate >= 0.
    Accumulates if called twice for the same pair. *)

val rate : t -> src:int -> dst:int -> float

val exit_rate : t -> int -> float
(** Total outgoing rate of a state. *)

val steady_state : ?tolerance:float -> ?max_iterations:int -> t -> float array
(** Stationary distribution [pi] with [pi Q = 0], [sum pi = 1], computed by
    Gauss-Seidel sweeps with normalization.  Requires the chain to be
    irreducible over the states reachable from state 0; raises [Failure] if
    the iteration does not converge. *)

val transient :
  ?epsilon:float -> t -> initial:float array -> time:float -> float array
(** [transient t ~initial ~time] is the state distribution after [time]
    units starting from [initial], by uniformization (Jensen's method):
    the Poisson-weighted powers of the uniformized DTMC, truncated when
    the remaining Poisson mass falls below [epsilon] (default 1e-10).
    Used to study warm-up transients exactly on small models. *)

val expected : t -> pi:float array -> f:(int -> float) -> float
(** [expected t ~pi ~f] is [sum_i pi.(i) * f i]. *)

val flow : t -> pi:float array -> select:(src:int -> dst:int -> bool) -> float
(** Steady-state probability flux along the selected transitions:
    [sum pi.(src) * rate(src,dst)] over pairs accepted by [select].  Used to
    read throughputs out of the chain. *)
