module Network = Lattol_queueing.Network
module Solution = Lattol_queueing.Solution

(* All length-[parts] vectors of non-negative ints summing to [n]. *)
let compositions n parts =
  if parts = 0 then (if n = 0 then [ [||] ] else [])
  else begin
    let acc = ref [] in
    let current = Array.make parts 0 in
    let rec go idx remaining =
      if idx = parts - 1 then begin
        current.(idx) <- remaining;
        acc := Array.copy current :: !acc
      end
      else
        for v = 0 to remaining do
          current.(idx) <- v;
          go (idx + 1) (remaining - v)
        done
    in
    go 0 n;
    List.rev !acc
  end

let binomial n k =
  let k = min k (n - k) in
  if k < 0 then 0
  else begin
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

type layout = {
  visited : int array array; (* visited.(c): stations class c visits *)
  comps : int array array array; (* comps.(c): compositions over visited.(c) *)
  strides : int array;
  total : int;
}

let layout_of network =
  let num_cls = Network.num_classes network in
  let num_st = Network.num_stations network in
  let visited =
    Array.init num_cls (fun c ->
        List.filter
          (fun m -> Network.visit network ~cls:c ~station:m > 0.)
          (List.init num_st Fun.id)
        |> Array.of_list)
  in
  let comps =
    Array.init num_cls (fun c ->
        Array.of_list
          (compositions (Network.population network c) (Array.length visited.(c))))
  in
  let strides = Array.make num_cls 1 in
  for c = 1 to num_cls - 1 do
    strides.(c) <- strides.(c - 1) * Array.length comps.(c - 1)
  done;
  let total =
    Array.fold_left (fun acc per_cls -> acc * Array.length per_cls) 1 comps
  in
  { visited; comps; strides; total }

let num_states network =
  let num_st = Network.num_stations network in
  let acc = ref 1 in
  for c = 0 to Network.num_classes network - 1 do
    let parts = ref 0 in
    for m = 0 to num_st - 1 do
      if Network.visit network ~cls:c ~station:m > 0. then incr parts
    done;
    acc := !acc * binomial (Network.population network c + !parts - 1) (!parts - 1)
  done;
  !acc

let solve ?(max_states = 200_000) network =
  let num_cls = Network.num_classes network in
  let num_st = Network.num_stations network in
  (* Queueing stations must have class-independent service times. *)
  for m = 0 to num_st - 1 do
    let shared_queue =
      match Network.station_kind network m with
      | Network.Queueing | Network.Multi_server _ -> true
      | Network.Delay -> false
    in
    if shared_queue then begin
      let s = ref None in
      for c = 0 to num_cls - 1 do
        if Network.visit network ~cls:c ~station:m > 0. then begin
          let sc = Network.service_time network ~cls:c ~station:m in
          match !s with
          | None -> s := Some sc
          | Some s0 ->
            if abs_float (s0 -. sc) > 1e-12 then
              Format.kasprintf invalid_arg
                "Qn_ctmc.solve: station %d has class-dependent FCFS service" m
        end
      done
    end
  done;
  let lay = layout_of network in
  if lay.total > max_states then
    Format.kasprintf invalid_arg
      "Qn_ctmc.solve: %d states exceed the %d cap" lay.total max_states;
  (* occupancy of class c at station m in global state idx *)
  let occupancy idx c m =
    let comp = lay.comps.(c).(idx / lay.strides.(c) mod Array.length lay.comps.(c)) in
    let rec find i =
      if i = Array.length lay.visited.(c) then 0
      else if lay.visited.(c).(i) = m then comp.(i)
      else find (i + 1)
    in
    find 0
  in
  let index_with idx c comp_idx =
    let old = idx / lay.strides.(c) mod Array.length lay.comps.(c) in
    idx + ((comp_idx - old) * lay.strides.(c))
  in
  (* For moving one customer between slots of class c we need the index of
     the perturbed composition; build a lookup from composition to index. *)
  let comp_index =
    Array.map
      (fun per_cls ->
        let tbl = Hashtbl.create (Array.length per_cls * 2) in
        Array.iteri (fun i comp -> Hashtbl.replace tbl comp i) per_cls;
        tbl)
      lay.comps
  in
  let chain = Ctmc.create lay.total in
  let total_visits c =
    Array.fold_left
      (fun acc m -> acc +. Network.visit network ~cls:c ~station:m)
      0. lay.visited.(c)
  in
  let v_totals = Array.init num_cls total_visits in
  (* completion rate of class c at station m in state idx *)
  let completion_rate idx c m =
    let n_cm = occupancy idx c m in
    if n_cm = 0 then 0.
    else
      match Network.station_kind network m with
      | Network.Delay ->
        float_of_int n_cm /. Network.service_time network ~cls:c ~station:m
      | Network.Queueing | Network.Multi_server _ ->
        let n_m = ref 0 in
        for j = 0 to num_cls - 1 do
          n_m := !n_m + occupancy idx j m
        done;
        let active =
          match Network.station_kind network m with
          | Network.Multi_server servers -> min !n_m servers
          | Network.Queueing | Network.Delay -> 1
        in
        float_of_int active *. float_of_int n_cm /. float_of_int !n_m
        /. Network.service_time network ~cls:c ~station:m
  in
  for idx = 0 to lay.total - 1 do
    for c = 0 to num_cls - 1 do
      let stations = lay.visited.(c) in
      let comp_idx = idx / lay.strides.(c) mod Array.length lay.comps.(c) in
      let comp = lay.comps.(c).(comp_idx) in
      Array.iteri
        (fun slot_src m_src ->
          if comp.(slot_src) > 0 then begin
            let rate = completion_rate idx c m_src in
            Array.iteri
              (fun slot_dst m_dst ->
                if slot_dst <> slot_src then begin
                  let p =
                    Network.visit network ~cls:c ~station:m_dst /. v_totals.(c)
                  in
                  if p > 0. then begin
                    let moved = Array.copy comp in
                    moved.(slot_src) <- moved.(slot_src) - 1;
                    moved.(slot_dst) <- moved.(slot_dst) + 1;
                    let comp_idx' = Hashtbl.find comp_index.(c) moved in
                    let idx' = index_with idx c comp_idx' in
                    Ctmc.add_rate chain ~src:idx ~dst:idx' (rate *. p)
                  end
                end)
              stations
          end)
        stations
    done
  done;
  let pi = Ctmc.steady_state chain in
  let throughput = Array.make num_cls 0. in
  let queue = Array.make_matrix num_cls num_st 0. in
  let residence = Array.make_matrix num_cls num_st 0. in
  for c = 0 to num_cls - 1 do
    if Network.population network c > 0 then begin
      let completion_flux =
        Ctmc.expected chain ~pi ~f:(fun idx ->
            Array.fold_left
              (fun acc m -> acc +. completion_rate idx c m)
              0. lay.visited.(c))
      in
      throughput.(c) <- completion_flux /. v_totals.(c);
      for m = 0 to num_st - 1 do
        queue.(c).(m) <-
          Ctmc.expected chain ~pi ~f:(fun idx -> float_of_int (occupancy idx c m));
        if throughput.(c) > 0. then
          residence.(c).(m) <- queue.(c).(m) /. throughput.(c)
      done
    end
  done;
  {
    Solution.network;
    throughput;
    residence;
    queue;
    iterations = 1;
    converged = true;
  }
