(** Brute-force CTMC solution of a closed multi-class queueing network.

    Enumerates the full state space (per-station, per-class occupancy
    vectors), builds the generator, solves for the stationary distribution
    and reads out the same performance measures as the MVA solvers.  This is
    exactly the "computationally intensive state space technique" the paper
    mentions ("a two-processor system with 10 threads on each processor has
    63504 states") and serves as ground truth in the test suite.

    Modelling notes:

    - Queueing stations must have class-independent service times (checked);
      completion picks a customer uniformly among those present, which for
      exponential, equal-rate servers has the same stationary distribution
      as FCFS.
    - Routing is generated from the visit ratios ([p_{m,j} = v_j / V]),
      which preserves the traffic equations and hence the product-form
      solution. *)

val num_states : Lattol_queueing.Network.t -> int
(** Number of CTMC states the builder would enumerate. *)

val solve :
  ?max_states:int -> Lattol_queueing.Network.t -> Lattol_queueing.Solution.t
(** Exact solution via the stationary distribution.  Raises
    [Invalid_argument] when the state space exceeds [max_states] (default
    200_000) or when a queueing station has class-dependent service. *)
