(** Token-game simulation of stochastic timed Petri nets.

    Semantics:
    - {e timed} transitions are single servers with race policy and
      enabling memory: a newly enabled transition samples a service delay
      and keeps it while it stays enabled; losing its tokens cancels the
      service, and a transition that remains enabled after firing starts a
      fresh service;
    - {e timed infinite-server} transitions keep one independent service
      per unit of enabling degree; when the degree drops, the most recently
      started services are cancelled (exact for exponential timings, a
      resampling approximation otherwise);
    - {e immediate} transitions fire in zero time with priority over timed
      ones; conflicts among simultaneously enabled immediates are resolved
      at random, proportionally to their weights.

    The stationary estimates this produces (time-averaged markings, firing
    rates, busy fractions) are what the paper reports from its STPN runs. *)

type stats = {
  time : float;           (** measured (post-warm-up) simulated time *)
  events : int;
  firings : int array;    (** per transition, during measurement *)
  rates : float array;    (** firings / time *)
  place_mean : float array;  (** time-averaged token counts *)
  busy : float array;
      (** per timed transition: time-average number of services in progress
          (for single-server transitions this is the busy fraction; 0 for
          immediates) *)
}

val simulate :
  ?seed:int -> ?warmup:float -> horizon:float -> Petri.t -> stats
(** Simulate from the initial marking.  [warmup] (default 0) time units are
    discarded before statistics accumulate over [horizon] time units.
    Raises [Failure] if an unbounded cascade of immediate firings occurs
    (more than 1e6 at one instant). *)
