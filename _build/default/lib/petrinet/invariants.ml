exception Too_many_rows of int

let incidence net =
  let np = Petri.num_places net and nt = Petri.num_transitions net in
  let c = Array.make_matrix np nt 0 in
  for tr = 0 to nt - 1 do
    Array.iter
      (fun (p, mult) -> c.(p).(tr) <- c.(p).(tr) - mult)
      (Petri.inputs net tr);
    Array.iter
      (fun (p, mult) -> c.(p).(tr) <- c.(p).(tr) + mult)
      (Petri.outputs net tr)
  done;
  c

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let normalize row =
  let g = Array.fold_left (fun acc v -> gcd acc v) 0 row in
  if g > 1 then Array.map (fun v -> v / g) row else row

(* Support-minimality filter: drop vectors whose support strictly contains
   another vector's support. *)
let minimal_support rows =
  let support row =
    let acc = ref [] in
    Array.iteri (fun i v -> if v <> 0 then acc := i :: !acc) row;
    !acc
  in
  let with_support = List.map (fun r -> (r, support r)) rows in
  List.filter_map
    (fun (r, s) ->
      let strictly_contains_other =
        List.exists
          (fun (r', s') ->
            r != r'
            && List.length s' < List.length s
            && List.for_all (fun p -> List.mem p s) s')
          with_support
      in
      if strictly_contains_other then None else Some r)
    with_support

(* Farkas elimination on an [n x m] integer matrix: returns the minimal
   non-negative integer combinations of rows that cancel every column. *)
let farkas ~max_rows matrix =
  let n = Array.length matrix in
  let m = if n = 0 then 0 else Array.length matrix.(0) in
  let rows =
    ref
      (List.init n (fun i ->
           let w = Array.make n 0 in
           w.(i) <- 1;
           (w, Array.copy matrix.(i))))
  in
  for tr = 0 to m - 1 do
    let zero = ref [] and pos = ref [] and neg = ref [] in
    List.iter
      (fun ((_, residual) as row) ->
        if residual.(tr) = 0 then zero := row :: !zero
        else if residual.(tr) > 0 then pos := row :: !pos
        else neg := row :: !neg)
      !rows;
    let combined = ref !zero in
    List.iter
      (fun (wp, rp) ->
        List.iter
          (fun (wn, rn) ->
            let a = -rn.(tr) and b = rp.(tr) in
            let w = Array.init n (fun i -> (a * wp.(i)) + (b * wn.(i))) in
            let r = Array.init m (fun j -> (a * rp.(j)) + (b * rn.(j))) in
            (* Normalize jointly so the weight/residual pair stays
               consistent. *)
            let g =
              Array.fold_left gcd (Array.fold_left gcd 0 w) r
            in
            let w, r =
              if g > 1 then
                (Array.map (fun v -> v / g) w, Array.map (fun v -> v / g) r)
              else (w, r)
            in
            combined := (w, r) :: !combined)
          !neg)
      !pos;
    (* Deduplicate identical rows to curb growth. *)
    let tbl = Hashtbl.create (List.length !combined * 2) in
    let unique =
      List.filter
        (fun (w, _) ->
          if Hashtbl.mem tbl w then false
          else begin
            Hashtbl.replace tbl w ();
            true
          end)
        !combined
    in
    if List.length unique > max_rows then
      raise (Too_many_rows (List.length unique));
    rows := unique
  done;
  let flows =
    List.filter_map
      (fun (w, _) ->
        if Array.exists (fun v -> v <> 0) w then Some (normalize w) else None)
      !rows
  in
  minimal_support flows

let p_semiflows ?(max_rows = 20_000) net = farkas ~max_rows (incidence net)

let t_semiflows ?(max_rows = 20_000) net =
  let c = incidence net in
  let np = Petri.num_places net and nt = Petri.num_transitions net in
  let transposed =
    Array.init nt (fun tr -> Array.init np (fun p -> c.(p).(tr)))
  in
  farkas ~max_rows transposed

let reproduces_marking net ~firings =
  if Array.length firings <> Petri.num_transitions net then
    invalid_arg "Invariants.reproduces_marking: size mismatch";
  let c = incidence net in
  let ok = ref true in
  for p = 0 to Petri.num_places net - 1 do
    let acc = ref 0 in
    Array.iteri (fun tr count -> acc := !acc + (c.(p).(tr) * count)) firings;
    if !acc <> 0 then ok := false
  done;
  !ok

let conserved_total net ~weights =
  if Array.length weights <> Petri.num_places net then
    invalid_arg "Invariants.conserved_total: weight size mismatch";
  let marking = Petri.initial_marking net in
  let acc = ref 0 in
  Array.iteri (fun p w -> acc := !acc + (w * marking.(p))) weights;
  !acc

let covers flows ~place =
  List.exists (fun w -> w.(place) > 0) flows
