(** Reachability analysis and exact CTMC solution of bounded STPNs.

    For nets whose timed transitions are all exponential, the tangible
    reachability graph is a continuous-time Markov chain: vanishing
    markings (those enabling an immediate transition) are eliminated by
    following immediate firings probabilistically until a tangible marking
    is reached.  Solving that CTMC ({!Lattol_markov.Ctmc}) gives the exact
    stationary behaviour of the net — the ground truth the test suite holds
    the token-game simulator {!Simulation} against. *)

type t = {
  net : Petri.t;
  markings : int array array;   (** tangible markings, index = CTMC state *)
  chain : Lattol_markov.Ctmc.t;
  transition_flux : (int * Petri.transition * float) list array;
      (** per state: [(target, transition, rate)] with immediate firings
          folded in — the immediate transition recorded is the {e timed}
          one that initiated the move *)
}

exception Unbounded of int
(** Raised (with the state cap) when exploration exceeds the cap. *)

exception Vanishing_loop
(** Raised when immediate transitions can cycle without time passing. *)

val explore : ?max_states:int -> Petri.t -> t
(** Build the tangible reachability graph from the initial marking
    (default cap 100_000 tangible states).  Raises [Invalid_argument] if a
    timed transition is not exponential, {!Unbounded}, or
    {!Vanishing_loop}. *)

val num_states : t -> int

val steady_state : t -> float array
(** Stationary distribution over tangible markings. *)

val place_mean : t -> pi:float array -> Petri.place -> float
(** Expected token count of a place. *)

val throughput : t -> pi:float array -> Petri.transition -> float
(** Mean firing rate of a {e timed} transition. *)

val probability_nonempty : t -> pi:float array -> Petri.place -> float
(** Stationary probability that the place holds at least one token. *)

val deadlocks : t -> int list
(** Tangible states with no outgoing transitions: markings from which the
    net can never move again.  The paper assumes its execution model "does
    not have inherent deadlocks"; this verifies that structurally on the
    explored graph (the MMS nets must return []). *)
