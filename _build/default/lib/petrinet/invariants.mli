(** Structural analysis: place invariants (P-semiflows).

    A P-semiflow is a non-negative integer weighting of places whose
    weighted token sum is unchanged by every transition — conservation laws
    of the net (threads are never created or destroyed, a server is always
    either idle or busy, ...).  {!p_semiflows} computes a generating set of
    minimal-support semiflows with the Farkas / Martinez-Silva elimination
    on the incidence matrix; the test suite uses it to {e discover} the MMS
    model's conservation laws rather than assert them by hand. *)

exception Too_many_rows of int
(** Raised when the elimination exceeds the row cap (the worst case is
    exponential). *)

val incidence : Petri.t -> int array array
(** [incidence net].(p).(t): net token change of place [p] when transition
    [t] fires. *)

val p_semiflows : ?max_rows:int -> Petri.t -> int array list
(** Minimal-support non-negative place invariants, each normalized to
    coprime weights (default row cap 20_000).  Every returned vector [w]
    satisfies [Petri.is_invariant net ~weights:(float w)]. *)

val conserved_total : Petri.t -> weights:int array -> int
(** The (constant) weighted token sum of the initial marking. *)

val covers : int array list -> place:Petri.place -> bool
(** Does some semiflow give the place a positive weight?  A net whose
    every place is covered is structurally bounded. *)

val t_semiflows : ?max_rows:int -> Petri.t -> int array list
(** Transition invariants: non-negative firing-count vectors that return
    the net to its starting marking — the steady-state cycles.  In the MMS
    net every memory access (local, or remote to a given destination)
    shows up as one such cycle. *)

val reproduces_marking : Petri.t -> firings:int array -> bool
(** Check that the firing-count vector is a T-semiflow ([C x = 0]). *)
