open Lattol_stats
module Engine = Lattol_sim.Engine

type stats = {
  time : float;
  events : int;
  firings : int array;
  rates : float array;
  place_mean : float array;
  busy : float array;
}

type state = {
  net : Petri.t;
  engine : Engine.t;
  rng : Prng.t;
  marking : int array;
  (* timed-transition service state: one pending engine event per service
     in progress (single-server transitions keep at most one) *)
  handles : Engine.handle list array;
  mutable enabled_imms : int list; (* lazily maintained; flags are exact *)
  imm_flag : bool array;
  (* statistics *)
  firings : int array;
  place_area : float array;
  place_last : float array;
  busy_area : float array; (* integral of in-progress services over time *)
  busy_last : float array;
  mutable stats_start : float;
  mutable events : int;
}

let note_place st p =
  let now = Engine.now st.engine in
  st.place_area.(p) <-
    st.place_area.(p)
    +. (float_of_int st.marking.(p) *. (now -. st.place_last.(p)));
  st.place_last.(p) <- now

let note_busy st tr =
  let now = Engine.now st.engine in
  st.busy_area.(tr) <-
    st.busy_area.(tr)
    +. (float_of_int (List.length st.handles.(tr)) *. (now -. st.busy_last.(tr)));
  st.busy_last.(tr) <- now

(* The number of services transition [tr] should have in progress under the
   current marking. *)
let target_degree st tr =
  match Petri.timing st.net tr with
  | Petri.Immediate _ -> 0
  | Petri.Timed _ ->
    if Petri.enabled st.net ~marking:st.marking tr then 1 else 0
  | Petri.Timed_infinite _ ->
    if Petri.enabled st.net ~marking:st.marking tr then
      Petri.enabling_degree st.net ~marking:st.marking tr
    else 0

let remove_handle st tr h =
  st.handles.(tr) <- List.filter (fun h' -> h' != h) st.handles.(tr)

(* Bring one transition's scheduling in line with the current marking. *)
let rec refresh st tr =
  match Petri.timing st.net tr with
  | Petri.Immediate _ ->
    let en = Petri.enabled st.net ~marking:st.marking tr in
    if en && not st.imm_flag.(tr) then begin
      st.imm_flag.(tr) <- true;
      st.enabled_imms <- tr :: st.enabled_imms
    end
    else if (not en) && st.imm_flag.(tr) then st.imm_flag.(tr) <- false
  | Petri.Timed dist | Petri.Timed_infinite dist ->
    let target = target_degree st tr in
    let active = List.length st.handles.(tr) in
    if active <> target then begin
      note_busy st tr;
      if active < target then
        for _ = active + 1 to target do
          let cell = ref None in
          let h =
            Engine.schedule_cancellable st.engine
              ~delay:(Variate.draw dist st.rng)
              (fun () ->
                (* Integrate the busy interval before dropping the handle,
                   or the completed service would be accounted at degree
                   zero. *)
                note_busy st tr;
                (match !cell with
                | Some h -> remove_handle st tr h
                | None -> ());
                fire st tr)
          in
          cell := Some h;
          st.handles.(tr) <- h :: st.handles.(tr)
        done
      else begin
        (* Cancel the most recently started services (any choice is
           equivalent for exponential timings; for others this is the
           documented resampling approximation). *)
        let rec drop n = function
          | rest when n = 0 -> rest
          | h :: rest ->
            Engine.cancel st.engine h;
            drop (n - 1) rest
          | [] -> []
        in
        st.handles.(tr) <- drop (active - target) st.handles.(tr)
      end
    end

(* Apply one firing: mutate the marking (with token-time accounting) and
   refresh the scheduling of every transition connected to a changed
   place.  Does not drain immediates — callers decide. *)
and apply_firing_no_drain st tr =
  st.events <- st.events + 1;
  st.firings.(tr) <- st.firings.(tr) + 1;
  let touched = ref [] in
  Array.iter
    (fun (p, mult) ->
      note_place st p;
      st.marking.(p) <- st.marking.(p) - mult;
      touched := p :: !touched)
    (Petri.inputs st.net tr);
  Array.iter
    (fun (p, mult) ->
      note_place st p;
      st.marking.(p) <- st.marking.(p) + mult;
      touched := p :: !touched)
    (Petri.outputs st.net tr);
  List.iter
    (fun p -> Array.iter (refresh st) (Petri.transitions_on_place st.net p))
    !touched

and fire st tr =
  (* A timed service completed: busy time was integrated and the handle
     removed by the engine callback. *)
  apply_firing_no_drain st tr;
  (* The transition itself may need rescheduling even if no connected
     place-change triggered it (e.g. a pure token shuffle). *)
  refresh st tr;
  drain_immediates st

and drain_immediates st =
  let budget = ref 1_000_000 in
  let rec loop () =
    (* Compact the lazily maintained enabled list, collecting live
       immediates and their total weight. *)
    let live = ref [] and total = ref 0. in
    List.iter
      (fun tr ->
        if st.imm_flag.(tr) && Petri.enabled st.net ~marking:st.marking tr
        then begin
          live := tr :: !live;
          match Petri.timing st.net tr with
          | Petri.Immediate w -> total := !total +. w
          | Petri.Timed _ | Petri.Timed_infinite _ -> assert false
        end
        else st.imm_flag.(tr) <- false)
      st.enabled_imms;
    st.enabled_imms <- !live;
    match !live with
    | [] -> ()
    | live_list ->
      decr budget;
      if !budget <= 0 then
        failwith
          "Simulation: immediate-transition livelock (1e6 firings at one instant)";
      let x = Prng.float st.rng *. !total in
      let rec pick acc = function
        | [ tr ] -> tr
        | tr :: rest ->
          let w =
            match Petri.timing st.net tr with
            | Petri.Immediate w -> w
            | Petri.Timed _ | Petri.Timed_infinite _ -> assert false
          in
          if x < acc +. w then tr else pick (acc +. w) rest
        | [] -> assert false
      in
      let tr = pick 0. live_list in
      st.imm_flag.(tr) <- false;
      apply_firing_no_drain st tr;
      loop ()
  in
  loop ()

let reset_stats st =
  let now = Engine.now st.engine in
  st.stats_start <- now;
  Array.fill st.firings 0 (Array.length st.firings) 0;
  Array.fill st.place_area 0 (Array.length st.place_area) 0.;
  Array.fill st.place_last 0 (Array.length st.place_last) now;
  Array.fill st.busy_area 0 (Array.length st.busy_area) 0.;
  Array.fill st.busy_last 0 (Array.length st.busy_last) now;
  st.events <- 0

let simulate ?(seed = 1) ?(warmup = 0.) ~horizon net =
  if warmup < 0. || horizon <= 0. then
    invalid_arg "Simulation.simulate: warmup >= 0, horizon > 0";
  let engine = Engine.create () in
  let np = Petri.num_places net and nt = Petri.num_transitions net in
  let st =
    {
      net;
      engine;
      rng = Prng.create ~seed ();
      marking = Petri.initial_marking net;
      handles = Array.make nt [];
      enabled_imms = [];
      imm_flag = Array.make nt false;
      firings = Array.make nt 0;
      place_area = Array.make np 0.;
      place_last = Array.make np 0.;
      busy_area = Array.make nt 0.;
      busy_last = Array.make nt 0.;
      stats_start = 0.;
      events = 0;
    }
  in
  for tr = 0 to nt - 1 do
    refresh st tr
  done;
  drain_immediates st;
  Engine.run ~until:warmup engine;
  reset_stats st;
  Engine.run ~until:(warmup +. horizon) engine;
  (* Flush running accumulators to the final clock. *)
  for p = 0 to np - 1 do
    note_place st p
  done;
  for tr = 0 to nt - 1 do
    note_busy st tr
  done;
  {
    time = horizon;
    events = st.events;
    firings = Array.copy st.firings;
    rates = Array.map (fun f -> float_of_int f /. horizon) st.firings;
    place_mean = Array.map (fun a -> a /. horizon) st.place_area;
    busy = Array.map (fun a -> a /. horizon) st.busy_area;
  }
