type place = int

type transition = int

type timing =
  | Immediate of float
  | Timed of Lattol_stats.Variate.t
  | Timed_infinite of Lattol_stats.Variate.t

type t = {
  place_names : string array;
  initial : int array;
  transition_names : string array;
  timings : timing array;
  inputs : (place * int) array array;
  outputs : (place * int) array array;
  on_place : transition array array;
}

module Builder = struct
  type net = t

  type t = {
    mutable places : (string * int) list;  (* reversed *)
    mutable num_places : int;
    mutable transitions :
      (string * timing * (place * int) list * (place * int) list) list;
    mutable num_transitions : int;
  }

  let create () =
    { places = []; num_places = 0; transitions = []; num_transitions = 0 }

  let add_place b ?(initial = 0) name =
    if initial < 0 then invalid_arg "Petri.Builder.add_place: negative marking";
    b.places <- (name, initial) :: b.places;
    b.num_places <- b.num_places + 1;
    b.num_places - 1

  let check_arcs b kind arcs =
    if arcs = [] && kind = "input" then
      invalid_arg "Petri.Builder.add_transition: no input arcs";
    List.iter
      (fun (p, mult) ->
        if p < 0 || p >= b.num_places then
          Format.kasprintf invalid_arg
            "Petri.Builder.add_transition: %s arc to unknown place %d" kind p;
        if mult < 1 then
          invalid_arg "Petri.Builder.add_transition: arc multiplicity >= 1")
      arcs

  let add_transition b name timing ~inputs ~outputs =
    check_arcs b "input" inputs;
    check_arcs b "output" outputs;
    (match timing with
    | Immediate w when w <= 0. ->
      invalid_arg "Petri.Builder.add_transition: weight must be > 0"
    | Timed d | Timed_infinite d ->
      (match Lattol_stats.Variate.validate d with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Petri.Builder.add_transition: " ^ msg))
    | Immediate _ -> ());
    b.transitions <- (name, timing, inputs, outputs) :: b.transitions;
    b.num_transitions <- b.num_transitions + 1;
    b.num_transitions - 1

  let build b =
    let places = Array.of_list (List.rev b.places) in
    let transitions = Array.of_list (List.rev b.transitions) in
    let on_place_lists = Array.make (Array.length places) [] in
    Array.iteri
      (fun t (_, _, ins, outs) ->
        let touch (p, _) =
          match on_place_lists.(p) with
          | t' :: _ when t' = t -> ()
          | l -> on_place_lists.(p) <- t :: l
        in
        List.iter touch ins;
        List.iter touch outs)
      transitions;
    {
      place_names = Array.map fst places;
      initial = Array.map snd places;
      transition_names = Array.map (fun (n, _, _, _) -> n) transitions;
      timings = Array.map (fun (_, tm, _, _) -> tm) transitions;
      inputs = Array.map (fun (_, _, i, _) -> Array.of_list i) transitions;
      outputs = Array.map (fun (_, _, _, o) -> Array.of_list o) transitions;
      on_place = Array.map (fun l -> Array.of_list (List.rev l)) on_place_lists;
    }
end

let num_places t = Array.length t.place_names

let num_transitions t = Array.length t.transition_names

let place_name t p = t.place_names.(p)

let transition_name t tr = t.transition_names.(tr)

let timing t tr = t.timings.(tr)

let inputs t tr = t.inputs.(tr)

let outputs t tr = t.outputs.(tr)

let initial_marking t = Array.copy t.initial

let transitions_on_place t p = t.on_place.(p)

let enabled t ~marking tr =
  Array.for_all (fun (p, mult) -> marking.(p) >= mult) t.inputs.(tr)

let enabling_degree t ~marking tr =
  Array.fold_left
    (fun acc (p, mult) -> min acc (marking.(p) / mult))
    max_int t.inputs.(tr)

let fire t ~marking tr =
  if not (enabled t ~marking tr) then
    Format.kasprintf invalid_arg "Petri.fire: %s not enabled"
      t.transition_names.(tr);
  Array.iter (fun (p, mult) -> marking.(p) <- marking.(p) - mult) t.inputs.(tr);
  Array.iter (fun (p, mult) -> marking.(p) <- marking.(p) + mult) t.outputs.(tr)

let token_delta t tr ~weights =
  if Array.length weights <> num_places t then
    invalid_arg "Petri.token_delta: weight vector size mismatch";
  let acc = ref 0. in
  Array.iter
    (fun (p, mult) -> acc := !acc -. (weights.(p) *. float_of_int mult))
    t.inputs.(tr);
  Array.iter
    (fun (p, mult) -> acc := !acc +. (weights.(p) *. float_of_int mult))
    t.outputs.(tr);
  !acc

let is_invariant t ~weights =
  let ok = ref true in
  for tr = 0 to num_transitions t - 1 do
    if abs_float (token_delta t tr ~weights) > 1e-9 then ok := false
  done;
  !ok

let pp ppf t =
  Fmt.pf ppf "@[STPN: %d places, %d transitions (%d immediate)@]"
    (num_places t) (num_transitions t)
    (Array.fold_left
       (fun acc tm ->
         match tm with Immediate _ -> acc + 1 | Timed _ | Timed_infinite _ -> acc)
       0 t.timings)
