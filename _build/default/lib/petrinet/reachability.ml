module Ctmc = Lattol_markov.Ctmc

type t = {
  net : Petri.t;
  markings : int array array;
  chain : Ctmc.t;
  transition_flux : (int * Petri.transition * float) list array;
}

exception Unbounded of int

exception Vanishing_loop

(* Base rate of one service; Timed_infinite transitions scale it by the
   enabling degree of the marking at hand. *)
let base_rate net tr =
  match Petri.timing net tr with
  | Petri.Timed (Lattol_stats.Variate.Exponential mean)
  | Petri.Timed_infinite (Lattol_stats.Variate.Exponential mean) ->
    1. /. mean
  | Petri.Timed d | Petri.Timed_infinite d ->
    Format.kasprintf invalid_arg
      "Reachability: transition %s has non-exponential timing %a"
      (Petri.transition_name net tr)
      Lattol_stats.Variate.pp d
  | Petri.Immediate _ -> invalid_arg "Reachability.base_rate: immediate"

let rate_in net tr marking =
  match Petri.timing net tr with
  | Petri.Timed _ -> base_rate net tr
  | Petri.Timed_infinite _ ->
    float_of_int (Petri.enabling_degree net ~marking tr) *. base_rate net tr
  | Petri.Immediate _ -> invalid_arg "Reachability.rate_in: immediate"

let enabled_list net marking pred =
  let acc = ref [] in
  for tr = Petri.num_transitions net - 1 downto 0 do
    if pred (Petri.timing net tr) && Petri.enabled net ~marking tr then
      acc := tr :: !acc
  done;
  !acc

let enabled_immediates net marking =
  enabled_list net marking (function
    | Petri.Immediate _ -> true
    | Petri.Timed _ | Petri.Timed_infinite _ -> false)

let enabled_timed net marking =
  enabled_list net marking (function
    | Petri.Immediate _ -> false
    | Petri.Timed _ | Petri.Timed_infinite _ -> true)

(* Follow immediate firings until tangible markings, multiplying branch
   probabilities.  [path] detects zero-time cycles. *)
let rec resolve net path marking =
  match enabled_immediates net marking with
  | [] -> [ (marking, 1.) ]
  | imms ->
    if List.exists (fun m -> m = marking) path then raise Vanishing_loop;
    let total =
      List.fold_left
        (fun acc tr ->
          match Petri.timing net tr with
          | Petri.Immediate w -> acc +. w
          | Petri.Timed _ | Petri.Timed_infinite _ -> assert false)
        0. imms
    in
    List.concat_map
      (fun tr ->
        let w =
          match Petri.timing net tr with
          | Petri.Immediate w -> w
          | Petri.Timed _ | Petri.Timed_infinite _ -> assert false
        in
        let next = Array.copy marking in
        Petri.fire net ~marking:next tr;
        List.map
          (fun (m, p) -> (m, p *. w /. total))
          (resolve net (marking :: path) next))
      imms

let explore ?(max_states = 100_000) net =
  (* Validate timings up front. *)
  for tr = 0 to Petri.num_transitions net - 1 do
    match Petri.timing net tr with
    | Petri.Timed _ | Petri.Timed_infinite _ -> ignore (base_rate net tr)
    | Petri.Immediate _ -> ()
  done;
  let index : (int array, int) Hashtbl.t = Hashtbl.create 1024 in
  let markings = ref [] in
  let count = ref 0 in
  let queue = Queue.create () in
  let intern m =
    match Hashtbl.find_opt index m with
    | Some id -> id
    | None ->
      if !count >= max_states then raise (Unbounded max_states);
      let id = !count in
      incr count;
      Hashtbl.replace index m id;
      markings := m :: !markings;
      Queue.add (id, m) queue;
      id
  in
  let edges = ref [] in
  List.iter
    (fun (m, _) -> ignore (intern m))
    (resolve net [] (Petri.initial_marking net));
  while not (Queue.is_empty queue) do
    let id, m = Queue.take queue in
    List.iter
      (fun tr ->
        let rate = rate_in net tr m in
        let next = Array.copy m in
        Petri.fire net ~marking:next tr;
        List.iter
          (fun (tangible, p) ->
            let id' = intern tangible in
            edges := (id, tr, id', rate *. p) :: !edges)
          (resolve net [] next))
      (enabled_timed net m)
  done;
  let n = !count in
  let chain = Ctmc.create n in
  let flux = Array.make n [] in
  List.iter
    (fun (src, tr, dst, rate) ->
      if src <> dst then Ctmc.add_rate chain ~src ~dst rate;
      flux.(src) <- (dst, tr, rate) :: flux.(src))
    !edges;
  let marking_array = Array.of_list (List.rev !markings) in
  { net; markings = marking_array; chain; transition_flux = flux }

let num_states t = Array.length t.markings

let steady_state t = Ctmc.steady_state t.chain

let place_mean t ~pi p =
  let acc = ref 0. in
  Array.iteri
    (fun s m -> acc := !acc +. (pi.(s) *. float_of_int m.(p)))
    t.markings;
  !acc

let throughput t ~pi tr =
  (match Petri.timing t.net tr with
  | Petri.Immediate _ ->
    invalid_arg "Reachability.throughput: only timed transitions"
  | Petri.Timed _ | Petri.Timed_infinite _ -> ());
  let acc = ref 0. in
  Array.iteri
    (fun s flux_s ->
      List.iter
        (fun (_, tr', rate) -> if tr' = tr then acc := !acc +. (pi.(s) *. rate))
        flux_s)
    t.transition_flux;
  !acc

let probability_nonempty t ~pi p =
  let acc = ref 0. in
  Array.iteri (fun s m -> if m.(p) > 0 then acc := !acc +. pi.(s)) t.markings;
  !acc

let deadlocks t =
  let acc = ref [] in
  Array.iteri
    (fun s flux -> if flux = [] then acc := s :: !acc)
    t.transition_flux;
  List.rev !acc
