lib/petrinet/petri.mli: Format Lattol_stats
