lib/petrinet/mms_stpn.ml: Access Array Lattol_core Lattol_stats Lattol_topology List Measures Params Petri Printf Reachability Simulation Topology Variate
