lib/petrinet/simulation.mli: Petri
