lib/petrinet/invariants.mli: Petri
