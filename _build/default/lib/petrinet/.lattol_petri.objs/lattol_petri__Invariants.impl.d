lib/petrinet/invariants.ml: Array Hashtbl List Petri
