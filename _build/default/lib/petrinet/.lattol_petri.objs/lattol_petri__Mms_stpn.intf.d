lib/petrinet/mms_stpn.mli: Lattol_core Measures Params Petri Simulation
