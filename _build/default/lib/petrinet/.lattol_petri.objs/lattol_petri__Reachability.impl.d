lib/petrinet/reachability.ml: Array Format Hashtbl Lattol_markov Lattol_stats List Petri Queue
