lib/petrinet/reachability.mli: Lattol_markov Petri
