lib/petrinet/petri.ml: Array Fmt Format Lattol_stats List
