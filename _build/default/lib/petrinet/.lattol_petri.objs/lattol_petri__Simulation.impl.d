lib/petrinet/simulation.ml: Array Lattol_sim Lattol_stats List Petri Prng Variate
