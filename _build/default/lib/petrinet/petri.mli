(** Stochastic timed Petri nets (structure).

    Places hold tokens; transitions consume [inputs] and produce [outputs]
    when they fire.  Transitions are either {e immediate} (fire in zero
    time, chosen among enabled immediates with probability proportional to
    weight) or {e timed} (fire after a random service delay; single-server
    semantics with enabling memory — see {!Simulation}).

    This is the modelling substrate for the paper's Section 8: the MMS is
    expressed as an STPN ({!Mms_stpn}) and simulated, cross-checking the
    queueing model from an independent formalism. *)

type place = int

type transition = int

type timing =
  | Immediate of float  (** weight (> 0) for probabilistic conflict resolution *)
  | Timed of Lattol_stats.Variate.t
      (** single-server: at most one firing in progress at a time *)
  | Timed_infinite of Lattol_stats.Variate.t
      (** infinite-server: one independent service per enabling degree
          (tokens permitting); used to model pooled multiserver stations *)

type t

module Builder : sig
  type net = t

  type t

  val create : unit -> t

  val add_place : t -> ?initial:int -> string -> place
  (** Declare a place with an initial marking (default 0). *)

  val add_transition :
    t -> string -> timing -> inputs:(place * int) list ->
    outputs:(place * int) list -> transition
  (** Declare a transition with input/output arcs (multiplicities >= 1).
      A transition must have at least one input arc. *)

  val build : t -> net
end

val num_places : t -> int

val num_transitions : t -> int

val place_name : t -> place -> string

val transition_name : t -> transition -> string

val timing : t -> transition -> timing

val enabling_degree : t -> marking:int array -> transition -> int
(** How many independent firings the marking permits:
    [min over inputs (marking / multiplicity)]. *)

val inputs : t -> transition -> (place * int) array

val outputs : t -> transition -> (place * int) array

val initial_marking : t -> int array

val transitions_on_place : t -> place -> transition array
(** Transitions having the place among their inputs or outputs (used for
    incremental enabling updates). *)

val enabled : t -> marking:int array -> transition -> bool

val fire : t -> marking:int array -> transition -> unit
(** Consume inputs, produce outputs, in place.  Raises [Invalid_argument]
    if the transition is not enabled. *)

val token_delta : t -> transition -> weights:float array -> float
(** Net change of [sum_p weights.(p) * marking.(p)] caused by one firing —
    zero for every transition iff [weights] is a P-(semi)invariant. *)

val is_invariant : t -> weights:float array -> bool
(** [token_delta] is zero (within 1e-9) for all transitions. *)

val pp : Format.formatter -> t -> unit
