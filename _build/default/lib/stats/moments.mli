(** Streaming sample statistics.

    Welford's online algorithm: numerically stable single-pass mean and
    variance, plus extrema.  Used by the simulators for every observed
    quantity (waiting times, queue lengths, latencies). *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one observation. *)

val add_weighted : t -> weight:float -> float -> unit
(** Record an observation with a non-negative weight (used for time-weighted
    averages such as queue lengths, where the weight is the elapsed time). *)

val count : t -> int
(** Number of [add]/[add_weighted] calls. *)

val total_weight : t -> float

val mean : t -> float
(** Weighted mean; [nan] if nothing was recorded. *)

val variance : t -> float
(** Unbiased sample variance (frequency-weighted); [nan] when fewer than two
    observations. *)

val stddev : t -> float

val min : t -> float

val max : t -> float

val sum : t -> float

val merge : t -> t -> t
(** Combine two accumulators as if all observations went into one. *)

val pp : Format.formatter -> t -> unit
