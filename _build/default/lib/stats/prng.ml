type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let default_seed = 0x1997_0415 (* IPPS'97 *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ?(seed = default_seed) () = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  (* Derive the child state from the next output so parent and child
     sequences are decorrelated even for adjacent seeds. *)
  let s = bits64 t in
  { state = mix64 (Int64.logxor s 0x5851F42D4C957F2DL) }

let float t =
  (* 53 high bits -> [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let float_pos t =
  let rec go () =
    let u = float t in
    if u > 0. then u else go ()
  in
  go ()

let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec go () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw n64 in
    if Int64.sub raw v > Int64.sub Int64.max_int (Int64.sub n64 1L) then go ()
    else Int64.to_int v
  in
  go ()

let bool t = Int64.logand (bits64 t) 1L = 1L
