(** Deterministic, splittable pseudo-random number generator.

    The generator is SplitMix64 (Steele, Lea and Flood, OOPSLA 2014): a
    64-bit counter advanced by a golden-ratio increment and finalized by a
    Murmur3-style mixer.  It is fast, has a period of 2^64 and, crucially for
    reproducible parallel experiments, supports {!split}: deriving an
    independent stream from an existing one.  All simulation code in this
    project draws randomness through this module so that every experiment is
    replayable from a single integer seed. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] makes a fresh generator.  The default seed is a fixed
    constant so that library users get reproducible runs unless they opt into
    their own seed. *)

val copy : t -> t
(** [copy t] is an independent generator starting from [t]'s current state. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent stream.
    Distinct splits of the same generator never share a sequence. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** [float t] is uniform on [[0, 1)] with 53 bits of precision. *)

val float_pos : t -> float
(** [float_pos t] is uniform on [(0, 1)]; never returns [0.], which makes it
    safe as an argument to [log]. *)

val int : t -> int -> int
(** [int t n] is uniform on [[0, n-1]].  [n] must be positive. *)

val bool : t -> bool
(** Fair coin flip. *)
