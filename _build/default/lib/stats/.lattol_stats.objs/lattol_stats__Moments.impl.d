lib/stats/moments.ml: Fmt Stdlib
