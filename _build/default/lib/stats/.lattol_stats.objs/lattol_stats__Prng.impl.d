lib/stats/prng.ml: Int64
