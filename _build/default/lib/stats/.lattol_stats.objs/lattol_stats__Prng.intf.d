lib/stats/prng.mli:
