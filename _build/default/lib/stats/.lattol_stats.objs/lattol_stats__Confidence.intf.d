lib/stats/confidence.mli: Moments
