lib/stats/histogram.ml: Array Fmt
