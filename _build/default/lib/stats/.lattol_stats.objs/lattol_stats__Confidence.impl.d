lib/stats/confidence.ml: Array Moments Option
