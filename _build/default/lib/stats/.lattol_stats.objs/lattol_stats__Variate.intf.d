lib/stats/variate.mli: Format Prng
