lib/stats/variate.ml: Array Fmt Format Prng
