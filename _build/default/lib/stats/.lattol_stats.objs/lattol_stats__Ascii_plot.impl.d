lib/stats/ascii_plot.ml: Array Buffer Float List Option Printf String
