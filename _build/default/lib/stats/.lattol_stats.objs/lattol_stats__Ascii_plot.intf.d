lib/stats/ascii_plot.mli:
