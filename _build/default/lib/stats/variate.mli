(** Random variates for the service-time and workload distributions used by
    the simulators.

    Each distribution is represented as a first-class value so that model
    builders can parameterize stations by distribution (the paper's
    exponential default, plus the deterministic variant used in its
    sensitivity check) without the simulator knowing which one it got. *)

type t =
  | Deterministic of float  (** always the given value *)
  | Exponential of float    (** mean (not rate) *)
  | Uniform of float * float  (** inclusive-exclusive range [a, b) *)
  | Erlang of int * float   (** [Erlang (k, mean)]: k stages, overall mean *)
  | Hyperexp of (float * float) array
      (** [(p_i, mean_i)] branches; probabilities must sum to 1 *)

val mean : t -> float
(** Analytical mean of the distribution. *)

val variance : t -> float
(** Analytical variance of the distribution. *)

val scv : t -> float
(** Squared coefficient of variation, [variance / mean^2].  1 for
    exponential, 0 for deterministic, 1/k for Erlang-k. *)

val draw : t -> Prng.t -> float
(** [draw d rng] samples one value.  All supported distributions are
    non-negative. *)

val exponential : Prng.t -> mean:float -> float
(** Direct exponential sampler (inverse transform). *)

val discrete : Prng.t -> float array -> int
(** [discrete rng weights] draws an index with probability proportional to
    [weights.(i)].  Weights must be non-negative with a positive sum. *)

val geometric_trunc : Prng.t -> p:float -> max:int -> int
(** [geometric_trunc rng ~p ~max] draws [h] from the truncated geometric
    distribution [P(h) = p^h / a] for [h = 1..max],
    [a = sum_{h=1}^{max} p^h] — the paper's distance distribution for remote
    accesses. *)

val validate : t -> (unit, string) result
(** Checks distribution parameters (positive means, probabilities summing to
    one, ...), returning a human-readable error otherwise. *)

val pp : Format.formatter -> t -> unit
