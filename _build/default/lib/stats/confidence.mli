(** Confidence intervals and the batch-means method.

    Steady-state simulation outputs are correlated, so raw per-sample
    confidence intervals are too narrow.  {!Batch_means} groups observations
    into fixed-size batches whose means are approximately independent and
    builds a Student-t interval over them — the standard method for the kind
    of long-run latency/throughput estimates in the paper's Section 8. *)

val t_quantile : df:int -> float
(** Two-sided 95% Student-t critical value for [df] degrees of freedom
    (table lookup for small df, normal approximation beyond). *)

val interval : Moments.t -> (float * float) option
(** [interval m] is the symmetric 95% confidence half-interval around the
    mean, as [(mean, half_width)]; [None] with fewer than two samples. *)

val autocorrelation : float array -> lag:int -> float
(** Sample autocorrelation at the given lag (biased estimator, the usual
    choice for batch sizing); 0 when undefined (constant or too-short
    series). *)

val suggest_batch_size : ?threshold:float -> ?max_lag:int -> float array -> int
(** Batch size for {!Batch_means} from the series' correlation structure:
    ten times the first lag at which |autocorrelation| drops below
    [threshold] (default 0.1, scanning up to [max_lag], default a quarter
    of the series).  Independent samples suggest 10; strongly correlated
    steady-state output suggests proportionally longer batches. *)

module Batch_means : sig
  type t

  val create : batch_size:int -> t
  (** Observations are grouped into consecutive batches of [batch_size]. *)

  val add : t -> float -> unit

  val num_batches : t -> int

  val mean : t -> float
  (** Grand mean over completed batches ([nan] if none). *)

  val interval : t -> (float * float) option
  (** 95% confidence [(mean, half_width)] over batch means; [None] with
      fewer than two completed batches. *)

  val relative_error : t -> float
  (** Half-width divided by |mean|; [infinity] when unavailable. *)
end
