type t = {
  mutable count : int;
  mutable weight : float;
  mutable mean : float;
  mutable m2 : float; (* sum of weighted squared deviations *)
  mutable min : float;
  mutable max : float;
}

let create () =
  { count = 0; weight = 0.; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add_weighted t ~weight x =
  if weight < 0. then invalid_arg "Moments.add_weighted: negative weight";
  if weight > 0. then begin
    t.count <- t.count + 1;
    let w' = t.weight +. weight in
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta *. weight /. w');
    t.m2 <- t.m2 +. (weight *. delta *. (x -. t.mean));
    t.weight <- w';
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let add t x = add_weighted t ~weight:1. x

let count t = t.count

let total_weight t = t.weight

let mean t = if t.count = 0 then nan else t.mean

let variance t =
  if t.count < 2 then nan
  else
    (* Frequency-weighted unbiased estimate; reduces to the classic n-1
       denominator when all weights are 1. *)
    t.m2 /. (t.weight *. float_of_int (t.count - 1) /. float_of_int t.count)

let stddev t = sqrt (variance t)

let min t = if t.count = 0 then nan else t.min

let max t = if t.count = 0 then nan else t.max

let sum t = t.mean *. t.weight

let merge a b =
  if a.count = 0 then { b with count = b.count }
  else if b.count = 0 then { a with count = a.count }
  else begin
    let w = a.weight +. b.weight in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. b.weight /. w) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. a.weight *. b.weight /. w) in
    {
      count = a.count + b.count;
      weight = w;
      mean;
      m2;
      min = Stdlib.min a.min b.min;
      max = Stdlib.max a.max b.max;
    }
  end

let pp ppf t =
  if t.count = 0 then Fmt.string ppf "(empty)"
  else
    Fmt.pf ppf "n=%d mean=%.6g sd=%.3g min=%.3g max=%.3g" t.count (mean t)
      (stddev t) t.min t.max
