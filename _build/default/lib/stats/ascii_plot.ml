type series = {
  label : string;
  points : (float * float) list;
}

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let finite_points s =
  List.filter
    (fun (x, y) -> Float.is_finite x && Float.is_finite y)
    s.points

let render ?(width = 64) ?(height = 16) ?x_min ?x_max ?y_min ?y_max
    ?(x_label = "") ?(y_label = "") series =
  let all = List.concat_map finite_points series in
  if all = [] then "(no finite data points)"
  else begin
    let xs = List.map fst all and ys = List.map snd all in
    let min_l = List.fold_left Float.min infinity in
    let max_l = List.fold_left Float.max neg_infinity in
    let x0 = Option.value x_min ~default:(min_l xs) in
    let x1 = Option.value x_max ~default:(max_l xs) in
    let y0 = Option.value y_min ~default:(min_l ys) in
    let y1 = Option.value y_max ~default:(max_l ys) in
    (* Pad a degenerate axis so single values still render mid-scale. *)
    let x0, x1 = if x1 > x0 then (x0, x1) else (x0 -. 1., x1 +. 1.) in
    let y0, y1 = if y1 > y0 then (y0, y1) else (y0 -. 1., y1 +. 1.) in
    let canvas = Array.make_matrix height width ' ' in
    let col x =
      let c =
        int_of_float
          (Float.round ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1)))
      in
      max 0 (min (width - 1) c)
    in
    let row y =
      let r =
        int_of_float
          (Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1)))
      in
      (height - 1) - max 0 (min (height - 1) r)
    in
    List.iteri
      (fun i s ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        List.iter
          (fun (x, y) -> canvas.(row y).(col x) <- glyph)
          (finite_points s))
      series;
    let buf = Buffer.create ((height + 4) * (width + 12)) in
    if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
    for r = 0 to height - 1 do
      (* Tick label on the top, middle and bottom rows. *)
      let y_of_row =
        y1 -. (float_of_int r /. float_of_int (height - 1) *. (y1 -. y0))
      in
      let tick =
        if r = 0 || r = height - 1 || r = height / 2 then
          Printf.sprintf "%8.3g" y_of_row
        else String.make 8 ' '
      in
      Buffer.add_string buf tick;
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.init width (fun c -> canvas.(r).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make 9 ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%9s %-8.3g%s%8.3g" "" x0
         (String.make (max 1 (width - 16)) ' ')
         x1);
    if x_label <> "" then Buffer.add_string buf ("  " ^ x_label);
    Buffer.add_char buf '\n';
    List.iteri
      (fun i s ->
        Buffer.add_string buf
          (Printf.sprintf "%9s%c %s\n" "" glyphs.(i mod Array.length glyphs) s.label))
      series;
    Buffer.contents buf
  end
