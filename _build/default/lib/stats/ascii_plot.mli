(** Plain-text line charts.

    The benchmark harness regenerates the paper's *figures*; this module
    lets it draw them as terminal charts rather than bare tables.  Several
    series share one canvas; each gets a distinct glyph and a legend
    entry.  Axes are linear, ranges taken from the data (or overridden). *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), any order *)
}

val render :
  ?width:int -> ?height:int -> ?x_min:float -> ?x_max:float -> ?y_min:float ->
  ?y_max:float -> ?x_label:string -> ?y_label:string -> series list -> string
(** A [width x height] (default 64 x 16) canvas with y-axis tick labels,
    an x-axis range line and a legend.  Non-finite points are skipped;
    an empty or degenerate range yields a message instead of a chart. *)
