(** System-size scaling studies (Section 7 of the paper).

    Scales the machine from [2x2] to [10x10], comparing the geometric and
    uniform remote-access patterns against each other and against an ideal
    ([S = 0]) network.  This is where the paper's most striking result
    lives: under good locality, finite switch delays pace remote traffic
    like pipeline stages, relieve memory contention, and lift system
    performance {e above} the ideal-network system ([tol_network > 1] under
    the {!Tolerance.Zero_delay} method, by up to ~1.5x). *)

open Lattol_topology

type point = {
  k : int;
  num_processors : int;
  pattern : Access.pattern;
  d_avg : float;
  measures : Measures.t;
  ideal_network : Measures.t;   (** same machine with [S = 0] *)
  tol_network : float;          (** zero-delay tolerance index *)
  throughput : float;           (** system throughput [P * lambda] *)
  throughput_ideal : float;
}

val evaluate : ?solver:Mms.solver -> Params.t -> k:int -> Access.pattern -> point

val sweep :
  ?solver:Mms.solver -> Params.t -> ks:int list -> patterns:Access.pattern list ->
  point list
(** Cartesian sweep, ordered patterns-within-k. *)

val pp_point : Format.formatter -> point -> unit
