(** Parameter sensitivity of processor utilization.

    The paper motivates the tolerance index as a way to "narrow the focus
    to the parameters which have a large effect on the system performance".
    This module makes that quantitative: central finite differences of
    [U_p] with respect to each model parameter, reported as elasticities
    ([%] change of [U_p] per [%] change of the parameter) so that
    architects and compilers can rank the knobs. *)

type derivative = {
  param : string;       (** parameter name *)
  value : float;        (** operating-point value *)
  gradient : float;     (** dU_p / dparam (central difference) *)
  elasticity : float;
      (** (dU_p / U_p) / (dparam / param): dimensionless sensitivity;
          negative means increasing the parameter hurts *)
}

val analyze : ?solver:Mms.solver -> ?rel_step:float -> Params.t -> derivative list
(** Derivatives of [U_p] with respect to [runlength], [p_remote], [l_mem],
    [s_switch], [p_sw] (geometric patterns only) and [n_t] (one-thread
    differences).  [rel_step] is the relative perturbation for continuous
    parameters (default 0.05).  Probabilities are clamped to their valid
    range before differencing. *)

val ranked : ?solver:Mms.solver -> ?rel_step:float -> Params.t -> derivative list
(** {!analyze} sorted by decreasing absolute elasticity: the first entry
    is the subsystem to tune first. *)

val pp_derivative : Format.formatter -> derivative -> unit
