lib/core/workload.ml: Access Array Format Lattol_topology List Option Params Printf Tolerance Topology
