lib/core/mms.mli: Lattol_queueing Measures Network Params Solution
