lib/core/partitioning.mli: Format Measures Mms Params Tolerance
