lib/core/cache_effects.ml: Float Fmt Format List Measures Params Tolerance
