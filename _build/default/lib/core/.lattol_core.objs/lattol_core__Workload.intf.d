lib/core/workload.mli: Lattol_topology Measures Params Topology
