lib/core/report.ml: Bottleneck Fmt Format Lattol_topology List Measures Params Sensitivity String Tolerance
