lib/core/tolerance.mli: Format Measures Mms Params
