lib/core/bottleneck.ml: Float Fmt Lattol_queueing Params
