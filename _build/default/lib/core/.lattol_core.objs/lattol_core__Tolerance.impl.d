lib/core/tolerance.ml: Fmt Lattol_topology Measures Mms Params
