lib/core/scaling.ml: Access Bottleneck Fmt Lattol_topology List Measures Params Printf Tolerance
