lib/core/optimizer.mli: Format Mms Params
