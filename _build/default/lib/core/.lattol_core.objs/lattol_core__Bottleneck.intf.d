lib/core/bottleneck.mli: Format Params
