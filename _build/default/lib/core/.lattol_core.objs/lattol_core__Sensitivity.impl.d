lib/core/sensitivity.ml: Access Float Fmt Fun Lattol_topology List Measures Mms Params
