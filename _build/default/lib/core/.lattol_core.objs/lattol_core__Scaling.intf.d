lib/core/scaling.mli: Access Format Lattol_topology Measures Mms Params
