lib/core/measures.ml: Fmt
