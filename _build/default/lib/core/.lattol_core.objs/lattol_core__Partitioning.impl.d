lib/core/partitioning.ml: Fmt List Measures Params Tolerance
