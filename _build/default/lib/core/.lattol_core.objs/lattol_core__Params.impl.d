lib/core/params.ml: Access Fmt Format Lattol_topology List Printf String Topology
