lib/core/hetero.ml: Access Amva Array Fmt Lattol_queueing Lattol_topology Linearizer List Mms Network Params Printf Solution
