lib/core/report.mli: Bottleneck Format Measures Mms Params Sensitivity Tolerance
