lib/core/measures.mli: Format
