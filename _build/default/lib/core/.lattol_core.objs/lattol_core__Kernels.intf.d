lib/core/kernels.mli: Lattol_topology Measures Params Topology
