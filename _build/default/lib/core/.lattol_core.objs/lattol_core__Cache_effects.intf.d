lib/core/cache_effects.mli: Format Measures Mms Params
