lib/core/optimizer.ml: Fmt Format Hashtbl List Measures Params String Tolerance
