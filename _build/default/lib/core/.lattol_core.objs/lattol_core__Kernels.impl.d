lib/core/kernels.ml: Access Array Fun Lattol_topology List Option Params Printf Tolerance Topology
