lib/core/sensitivity.mli: Format Mms Params
