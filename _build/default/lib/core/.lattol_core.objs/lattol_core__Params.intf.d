lib/core/params.mli: Access Format Lattol_topology Topology
