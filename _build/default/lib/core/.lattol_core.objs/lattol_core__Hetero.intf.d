lib/core/hetero.mli: Access Format Lattol_topology Params
