lib/core/mms.ml: Access Amva Array Float Fun Lattol_queueing Lattol_topology Linearizer List Logs Measures Mva Network Option Params Printf Solution Topology
