(** Performance measures of the MMS model (Section 2 of the paper).

    All quantities are per-processor (the SPMD workload makes every node
    statistically identical); system-wide throughput is
    [P * utilization / R]. *)

type t = {
  u_p : float;
      (** processor utilization, Eq. (3): [lambda * R] *)
  lambda : float;
      (** rate at which a processor completes thread activations, i.e.
          issues memory accesses ([lambda_i]) *)
  lambda_net : float;
      (** message rate to the network, Eq. (2): [lambda * p_remote] *)
  s_obs : float;
      (** observed one-way network latency per remote access, Eq. (1)
          normalized per remote trip; [nan] when there is no remote
          traffic *)
  l_obs : float;
      (** observed memory latency (queueing + service) per memory access *)
  cycle_time : float;
      (** mean time between successive activations of the same thread *)
  util_memory : float;   (** utilization of a memory module *)
  util_switch_in : float;   (** utilization of an inbound switch *)
  util_switch_out : float;  (** utilization of an outbound switch *)
  util_sync : float;
      (** utilization of a synchronization unit (0 when the machine has
          none) *)
  su_obs : float;
      (** total SU residence (three touches, queueing included) per remote
          access; 0 without an SU, [nan] without remote traffic *)
  queue_processor : float;  (** mean threads ready/executing at the processor *)
  queue_memory : float;     (** mean accesses at a memory module *)
  queue_network : float;
      (** mean messages of one processor's threads inside the IN *)
  iterations : int;
  converged : bool;
}

val system_throughput : t -> num_processors:int -> float
(** [P * lambda]: total thread-activation completions per unit time (the
    paper's Figure 10 plots [P * U_p], proportional to this for fixed R). *)

val pp : Format.formatter -> t -> unit

val pp_row : Format.formatter -> t -> unit
(** One-line tabular form used by the benchmark harness. *)
