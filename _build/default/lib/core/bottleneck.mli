(** The paper's closed-form bottleneck analysis (Equations 4 and 5).

    These formulas explain the model's knees without solving it:

    - Eq. (4): the IN routes at most
      [lambda_net_saturation = 1 / (2 d_avg S)] messages per processor per
      unit time — each remote round trip consumes [2 d_avg] inbound-switch
      services of [S] each, and there is one inbound switch per processor.
      (0.29 for [p_sw = 0.5], [S = 1] on the 4x4 torus.)
    - Eq. (5): the processor keeps busy while its access rate [1/R] stays
      below the combined response rate of the local memory and the network,
      [(1 - p_remote)/L + 1/(2 (d_avg + 1) S)]; the critical remote fraction
      is [p* = 1 + L/(2 (d_avg + 1) S) - L/R]  (0.18 at [R = 1], 0.68 at
      [R = 2] for the default machine). *)

type t = {
  d_avg : float;
  lambda_net_saturation : float;  (** Eq. (4); [infinity] if [S = 0] *)
  p_remote_critical : float;
      (** Eq. (5), clamped to [[0, 1]]; 1 when the network can always keep
          up *)
  p_remote_saturation : float;
      (** remote fraction at which [lambda_net] would hit Eq. (4) assuming
          a fully busy processor: [R * lambda_net_saturation], clamped to
          [[0, 1]] *)
  memory_demand : float;      (** [L / R]: memory utilization at [U_p = 1] *)
  memory_bound_u_p : float;   (** [min 1 (R / L)]: utilization cap from memory *)
}

val analyze : Params.t -> t

val lambda_net_saturation : Params.t -> float
(** Eq. (4) alone. *)

val p_remote_critical : Params.t -> float
(** Eq. (5) alone. *)

val pp : Format.formatter -> t -> unit

(** {1 Open-model view}

    Equations 4 and 5 are statements about an {e open} system: subsystems
    served by Poisson streams at the processor's offered rate.  This view
    makes the latency build-up behind those equations explicit through
    M/M/c stations ({!Lattol_queueing.Jackson}) at the per-processor access
    rate [lambda]: by symmetry a memory module sees rate [lambda], an
    outbound switch [2 p_remote lambda], and an inbound switch
    [2 d_avg p_remote lambda] — so the inbound switches saturate exactly at
    Eq. 4's [lambda_net = 1 / (2 d_avg S)]. *)

type open_view = {
  lambda : float;            (** per-processor access rate assumed *)
  stable : bool;             (** all subsystems below saturation *)
  util_memory : float;
  util_switch_in : float;    (** reaches 1 at Eq. 4's ceiling *)
  util_switch_out : float;
  l_obs_open : float;        (** M/M/c response of a memory module *)
  s_obs_open : float;
      (** one-way network latency: one outbound plus [d_avg] inbound
          responses; [infinity] when unstable *)
}

val open_view : Params.t -> lambda:float -> open_view
(** Raises [Invalid_argument] for negative [lambda]. *)

val pp_open_view : Format.formatter -> open_view -> unit
