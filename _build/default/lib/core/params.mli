(** Model parameters of the multithreaded multiprocessor system (MMS).

    One record gathers the paper's workload parameters ([n_t], [R],
    [p_remote], remote-access pattern) and architectural parameters ([L],
    [S], topology, [k]); Table 1 of the paper is {!default}.  All analysis
    entry points take this record, so experiments are plain OCaml values
    that can be swept, printed and compared. *)

open Lattol_topology

type t = {
  topology : Topology.kind;  (** torus (paper default) or open mesh *)
  k : int;                   (** nodes per dimension *)
  dimensions : int;
      (** network dimensionality: 1 = ring, 2 = the paper's torus/mesh,
          3 = cube, ...; [P = k ^ dimensions] *)
  n_t : int;                 (** threads per processor *)
  runlength : float;         (** R: mean computation time per thread activation *)
  context_switch : float;
      (** C: time to switch to the next ready thread, added to the
          processor occupancy of each activation (paper folds it into R;
          default 0) *)
  p_remote : float;          (** probability a memory access is remote *)
  pattern : Access.pattern;  (** remote-access pattern (geometric/uniform) *)
  l_mem : float;             (** L: memory service time per access *)
  mem_ports : int;
      (** number of concurrent accesses a memory module serves (Section 7's
          "multiporting/pipelining the memory can be of help"); 1 = the
          paper's baseline single-ported module *)
  s_switch : float;          (** S: switch routing time per message *)
  switch_pipeline : int;
      (** pipeline depth of each switch: up to this many messages progress
          concurrently, each still taking [S] end to end (a [Multi_server]
          station).  1 (the default) is the paper's non-pipelined switch;
          deeper values address the limitation the paper itself notes —
          "this method works well, except to achieve the low latency of
          pipelined networks in the presence of a light network traffic" —
          and raise Eq. 4's ceiling to [depth / (2 d_avg S)] *)
  sync_unit : float;
      (** service time of an EARTH-style synchronization unit (SU) per
          remote-operation touch; 0 (the default) removes the SU and gives
          the paper's plain PE.  When present, every remote access visits
          the source SU to inject, the destination SU to be handled, and
          the source SU again on completion — offloading communication
          handling from the processor (the EARTH EU/SU split the paper's
          execution model comes from) *)
}

val default : t
(** The paper's Table 1 defaults: 4x4 torus, [n_t = 8], [R = 1],
    [p_remote = 0.2], geometric pattern with [p_sw = 0.5] (so
    [d_avg = 1.733]), [L = 1], [S = 1], [C = 0]. *)

val validate : t -> (t, string) result
(** Checks ranges ([k >= 1], [n_t >= 0], non-negative times, probability
    bounds).  Returns the record unchanged when valid. *)

val validate_exn : t -> t
(** Like {!validate} but raises [Invalid_argument]. *)

val num_processors : t -> int
(** [k ^ dimensions]. *)

val processor_occupancy : t -> float
(** [runlength + context_switch]: the processor service time per thread
    activation used by the model. *)

val make_topology : t -> Topology.t

val make_access : t -> Access.t

val d_avg : t -> float
(** Mean hops of a remote access under these parameters ([nan] when
    [p_remote = 0]). *)

val pp : Format.formatter -> t -> unit
