(** Thread-partitioning analysis (Sections 5 and 6 of the paper).

    A compiler splitting a do-all loop must pick how many threads to expose
    ([n_t]) and how much work to give each (the runlength [R]) for a fixed
    amount of exposed computation [n_t x R].  This module sweeps the
    factorizations of that work budget and reports utilization and the
    tolerance indices for each, supporting the paper's conclusion that —
    past [n_t > 1] — a few long threads tolerate latency better than many
    short ones. *)

type point = {
  n_t : int;
  runlength : float;
  work : float;                    (** [n_t x R] *)
  measures : Measures.t;
  tol_network : float;
  tol_memory : float;
}

val evaluate :
  ?solver:Mms.solver -> ?ideal_method:Tolerance.ideal_method -> Params.t ->
  n_t:int -> runlength:float -> point
(** One partitioning choice: the base parameters with [n_t] and [R]
    replaced. *)

val sweep :
  ?solver:Mms.solver -> ?ideal_method:Tolerance.ideal_method -> Params.t ->
  work:float -> n_ts:int list -> point list
(** Points for each [n_t], with [R = work / n_t].  [n_t] values that do not
    divide into a positive runlength are rejected. *)

val best : point list -> point
(** The point with the highest processor utilization (ties broken towards
    fewer threads, the cheaper choice).  Raises [Invalid_argument] on an
    empty list. *)

val pp_point : Format.formatter -> point -> unit
