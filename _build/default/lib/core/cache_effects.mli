(** Cache contention among threads: the effect the paper set aside.

    Footnote 4 of the paper notes (citing Agarwal and Thekkath et al.) that
    multithreading can shrink the runlength itself — threads share the
    processor cache, so more threads mean more conflict misses, shorter
    bursts between long-latency accesses, and possibly more remote traffic —
    and explicitly declines to model it.  This module closes that gap with
    the standard working-set abstraction:

    - each thread touches a working set of [working_set] cache lines;
    - the [cache_lines] available per processor are shared, so with [n_t]
      threads a fraction [min 1 (cache / (n_t * ws))] of a thread's
      accesses hit;
    - a hit costs nothing here (it is part of the computation); a miss ends
      the run, so the runlength between long-latency operations is
      [hits-per-miss + 1] memory operations of [cycles_per_access] cycles.

    The resulting [R(n_t)] (and optionally a remote fraction that grows as
    capacity misses spill to other nodes) feeds straight into {!Params};
    {!sweep} reruns the paper's n_t analysis under it.  The qualitative
    change: utilization is no longer monotone in [n_t] — there is an
    interior optimum, which is what the cited measurements show. *)

type t = {
  cache_lines : int;        (** cache capacity per processor, in lines *)
  working_set : int;        (** lines a single thread keeps live *)
  miss_rate_floor : float;
      (** irreducible miss fraction even when a thread's working set fits
          (cold/coherence misses); in (0, 1] *)
  cycles_per_access : float;  (** computation cycles per cache access *)
}

val default : t
(** 1024 lines, working set 256, floor 0.05, 1 cycle per access: a cache
    that holds four threads comfortably. *)

val validate : t -> (t, string) result

val hit_rate : t -> n_t:int -> float
(** Fraction of accesses served by the cache when [n_t] threads share it. *)

val runlength : t -> n_t:int -> float
(** Mean computation cycles between long-latency operations:
    [cycles_per_access / miss_rate].  Decreases as threads crowd the
    cache. *)

val apply : t -> base:Params.t -> n_t:int -> Params.t
(** The base machine with [n_t] threads and the contention-adjusted
    runlength. *)

type point = {
  n_t : int;
  effective_runlength : float;
  hit_rate : float;
  measures : Measures.t;
  tol_network : float;
}

val sweep : ?solver:Mms.solver -> t -> base:Params.t -> n_ts:int list -> point list

val best_thread_count : ?solver:Mms.solver -> t -> base:Params.t -> max_threads:int -> point
(** The utilization-maximizing thread count in [1 .. max_threads] — interior
    when cache contention bites, unlike the contention-free model where
    more threads never hurt. *)

val pp_point : Format.formatter -> point -> unit
