(** One-stop analysis report for a machine/workload configuration.

    Combines everything the library computes — solved measures, both
    tolerance indices with zones, the closed-form bottleneck analysis, the
    open-model view at the operating point, and the sensitivity ranking —
    and derives the actionable summary the paper promises its metric
    enables: which subsystem limits this configuration and which knob to
    turn first. *)

type verdict =
  | Network_bound   (** tol_network is the lowest index *)
  | Memory_bound    (** tol_memory is the lowest index *)
  | Compute_bound   (** both latencies tolerated: the processor is the limit *)

type t = {
  params : Params.t;
  measures : Measures.t;
  network : Tolerance.report;
  memory : Tolerance.report;
  bottleneck : Bottleneck.t;
  open_view : Bottleneck.open_view;  (** at the solved operating rate *)
  sensitivities : Sensitivity.derivative list;  (** ranked *)
  verdict : verdict;
  recommendations : string list;
      (** short, derived suggestions (raise R, improve locality, add
          memory ports, ...) *)
}

val analyze : ?solver:Mms.solver -> Params.t -> t

val verdict_to_string : verdict -> string

val pp : Format.formatter -> t -> unit
(** Multi-section human-readable report (what the CLI's [report] command
    prints). *)
