(** Design-space search under a hardware budget.

    The paper's pitch to architects is that the tolerance index tells them
    {e which} subsystem to spend on.  This module closes the loop: given a
    base machine, a set of candidate upgrades with costs, and a budget, it
    enumerates affordable configurations, solves each, and returns them
    ranked by processor utilization.  Exhaustive (the space is tiny) and
    deterministic. *)

type upgrade = {
  description : string;
  cost : float;
  apply : Params.t -> Params.t;
}

val standard_upgrades : unit -> upgrade list
(** A representative catalogue: add a memory port (cost 2), add a pipeline
    stage to every switch (cost 3), halve the switch service time (cost 4),
    halve the memory service time (cost 4), add an EARTH SU at half the
    switch time (cost 2).  Each can be taken at most once per search except
    ports/pipeline which may repeat. *)

type configuration = {
  params : Params.t;
  applied : string list;       (** descriptions of chosen upgrades *)
  total_cost : float;
  u_p : float;
  tol_network : float;
  tol_memory : float;
}

val search :
  ?solver:Mms.solver -> ?max_configurations:int -> base:Params.t ->
  budget:float -> upgrade list -> configuration list
(** All affordable upgrade subsets (with repetition capped at 3 per
    upgrade), solved and sorted by decreasing [u_p]; the base
    configuration is always included.  Raises [Invalid_argument] on a
    negative budget, an upgrade with non-positive cost, or a search space
    larger than [max_configurations] (default 2000). *)

val best : ?solver:Mms.solver -> base:Params.t -> budget:float ->
  upgrade list -> configuration
(** Head of {!search}. *)

val pp_configuration : Format.formatter -> configuration -> unit
