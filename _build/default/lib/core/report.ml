type verdict = Network_bound | Memory_bound | Compute_bound

type t = {
  params : Params.t;
  measures : Measures.t;
  network : Tolerance.report;
  memory : Tolerance.report;
  bottleneck : Bottleneck.t;
  open_view : Bottleneck.open_view;
  sensitivities : Sensitivity.derivative list;
  verdict : verdict;
  recommendations : string list;
}

let verdict_to_string = function
  | Network_bound -> "network-bound"
  | Memory_bound -> "memory-bound"
  | Compute_bound -> "compute-bound (latencies tolerated)"

let recommend params verdict bottleneck (network : Tolerance.report)
    (memory : Tolerance.report) sensitivities =
  let recs = ref [] in
  let add fmt = Format.kasprintf (fun s -> recs := s :: !recs) fmt in
  (match verdict with
  | Compute_bound ->
    add
      "both latencies are tolerated; only more computation per thread or \
       faster processors help"
  | Network_bound ->
    if params.Params.p_remote > bottleneck.Bottleneck.p_remote_critical then
      add
        "p_remote = %.2f exceeds the critical %.2f (Eq. 5): redistribute \
         data/computation to cut remote accesses"
        params.Params.p_remote bottleneck.Bottleneck.p_remote_critical;
    (match params.Params.pattern with
    | Lattol_topology.Access.Uniform ->
      add "the uniform pattern has no locality: a geometric-like placement \
           would shorten routes"
    | Lattol_topology.Access.Geometric _ | Lattol_topology.Access.Explicit _ ->
      ());
    add
      "longer runlengths tolerate the network better: coalesce threads \
       (keep n_t >= 2) before adding more"
  | Memory_bound ->
    if params.Params.mem_ports = 1 then
      add
        "the memory module saturates (demand L/R = %.2f): multiporting \
         (mem_ports > 1) removes this wall"
        bottleneck.Bottleneck.memory_demand;
    add "raising the runlength R relative to L relieves the memory");
  (if network.Tolerance.zone = Tolerance.Tolerated
   && memory.Tolerance.zone = Tolerance.Tolerated
   && params.Params.n_t > 8
  then
     add
       "most gains arrive by 4-8 threads; n_t = %d mainly adds queueing \
        (and cache pressure)"
       params.Params.n_t);
  (match sensitivities with
  | top :: _ ->
    add "most sensitive knob at this point: %s (elasticity %+.2f)"
      top.Sensitivity.param top.Sensitivity.elasticity
  | [] -> ());
  List.rev !recs

let analyze ?solver params =
  let params = Params.validate_exn params in
  let network = Tolerance.network ?solver params in
  let memory = Tolerance.memory ?solver params in
  let measures = network.Tolerance.real in
  let bottleneck = Bottleneck.analyze params in
  let open_view = Bottleneck.open_view params ~lambda:measures.Measures.lambda in
  let sensitivities = Sensitivity.ranked ?solver params in
  let verdict =
    if
      network.Tolerance.zone = Tolerance.Tolerated
      && memory.Tolerance.zone = Tolerance.Tolerated
    then Compute_bound
    else if network.Tolerance.tol <= memory.Tolerance.tol then Network_bound
    else Memory_bound
  in
  let recommendations =
    recommend params verdict bottleneck network memory sensitivities
  in
  {
    params;
    measures;
    network;
    memory;
    bottleneck;
    open_view;
    sensitivities;
    verdict;
    recommendations;
  }

let pp ppf r =
  let bar = String.make 72 '-' in
  Fmt.pf ppf "@[<v>%s@,LATENCY TOLERANCE REPORT@,%s@," bar bar;
  Fmt.pf ppf "machine     %a@," Params.pp r.params;
  Fmt.pf ppf "verdict     %s@,@," (verdict_to_string r.verdict);
  Fmt.pf ppf "measures@,  %a@,@," Measures.pp r.measures;
  Fmt.pf ppf "tolerance@,  %a@,  %a@,@," Tolerance.pp_report r.network
    Tolerance.pp_report r.memory;
  Fmt.pf ppf "bottleneck (closed form)@,  %a@,@," Bottleneck.pp r.bottleneck;
  Fmt.pf ppf "open-model view at the operating point@,  %a@,@,"
    Bottleneck.pp_open_view r.open_view;
  Fmt.pf ppf "sensitivities (ranked)@,";
  List.iter
    (fun d -> Fmt.pf ppf "  %a@," Sensitivity.pp_derivative d)
    r.sensitivities;
  Fmt.pf ppf "@,recommendations@,";
  List.iter (fun s -> Fmt.pf ppf "  - %s@," s) r.recommendations;
  Fmt.pf ppf "%s@]" bar
