(** From programs to model parameters: the compiler's side of the paper.

    The paper's introduction motivates the tolerance index as a tool for
    choosing "a suitable computation decomposition and data distribution".
    This module closes that loop for the paper's canonical workload — a
    do-all loop over a distributed array — by deriving the remote-access
    pattern a given data distribution induces on the machine and feeding it
    to the model as an {!Lattol_topology.Access.Explicit} matrix (the
    paper's "by changing [em_{i,j}] our model is applicable to other
    distributions").

    The loop model: an array of [elements] cells distributed over the [P]
    memory modules; iteration [e] runs on the processor that owns cell [e]
    (owner-computes); each iteration reads/writes the cells at
    [e + offset] for every [offset] in the stencil (array indices wrap
    around).  Each access is one memory operation of the machine; the
    computation between accesses is the runlength. *)

open Lattol_topology

type distribution =
  | Block             (** contiguous chunks of [elements / P] cells *)
  | Cyclic            (** cell [e] lives on module [e mod P] *)
  | Block_cyclic of int  (** blocks of the given size dealt round-robin *)

type loop = {
  elements : int;        (** array length; must be >= number of modules *)
  distribution : distribution;
  stencil : int list;    (** accessed offsets per iteration, e.g. [-1; 0; 1] *)
  work_per_access : float;  (** computation cycles between accesses (R) *)
}

val validate : num_processors:int -> loop -> (loop, string) result

val owner : loop -> num_processors:int -> element:int -> int
(** Which memory module (= node) owns an array cell. *)

val access_matrix : loop -> Topology.t -> float array array
(** [em_{i,j}]: the fraction of node [i]'s accesses that target module
    [j], counting every (iteration owned by [i]) x (stencil offset). *)

type characterization = {
  matrix : float array array;
  p_remote_mean : float;       (** mean remote fraction over nodes *)
  p_remote_max : float;
  d_avg : float;               (** mean hops of remote accesses *)
  fitted_p_sw : float option;
      (** geometric locality parameter fitted to the distance profile
          (ratio of successive distance masses); [None] when there is no
          remote traffic or a single remote distance *)
}

val characterize : loop -> Topology.t -> characterization
(** Summary statistics of the induced pattern, including a geometric fit
    for users who want the paper's two-parameter abstraction. *)

val to_params : ?n_t:int -> base:Params.t -> loop -> Params.t
(** Model parameters for running this loop on the [base] machine: the
    runlength becomes [work_per_access], the access pattern the explicit
    induced matrix, and [n_t] (default: the base machine's) threads expose
    that many concurrent iterations per processor. *)

val compare_distributions :
  ?n_t:int -> base:Params.t -> elements:int -> stencil:int list ->
  work_per_access:float -> distribution list ->
  (distribution * characterization * Measures.t * float) list
(** Evaluate the same loop under several distributions; each result carries
    the induced characterization, the solved measures and the network
    tolerance index — the decision data for a compiler choosing a layout. *)

val distribution_to_string : distribution -> string

(** {1 Two-dimensional grids}

    The torus machine's natural workload: a do-all over an [rows x cols]
    grid (e.g. a 5-point Jacobi sweep).  The classic decomposition question
    — strips of rows versus square blocks — maps directly onto remote
    traffic: blocks have smaller perimeter-to-area ratio {e and} place
    neighbouring cells on neighbouring torus nodes. *)

module Grid : sig
  type decomposition =
    | Row_blocks
        (** contiguous bands of rows, band [b] on node [b] (row-major) *)
    | Row_cyclic   (** row [r] on node [r mod P] *)
    | Blocks
        (** a [k x k] grid of rectangular tiles, tile [(bx, by)] on the
            torus node with those coordinates — requires a 2-dimensional
            machine *)

  type t = {
    rows : int;
    cols : int;
    decomposition : decomposition;
    stencil : (int * int) list;  (** (drow, dcol) offsets, wrapping *)
    work_per_access : float;
  }

  val validate : base:Params.t -> t -> (t, string) result
  (** Checks divisibility of the grid by the machine ([P | rows] for row
      decompositions; [k | rows] and [k | cols] for [Blocks]) and stencil
      non-emptiness. *)

  val owner : t -> base:Params.t -> row:int -> col:int -> int
  (** Node owning a grid cell (indices wrap). *)

  val access_matrix : t -> base:Params.t -> float array array

  val characterize : t -> base:Params.t -> characterization

  val to_params : ?n_t:int -> base:Params.t -> t -> Params.t

  val compare_decompositions :
    ?n_t:int -> base:Params.t -> rows:int -> cols:int ->
    stencil:(int * int) list -> work_per_access:float -> decomposition list ->
    (decomposition * characterization * Measures.t * float) list

  val decomposition_to_string : decomposition -> string
end
