open Lattol_topology

type point = {
  k : int;
  num_processors : int;
  pattern : Access.pattern;
  d_avg : float;
  measures : Measures.t;
  ideal_network : Measures.t;
  tol_network : float;
  throughput : float;
  throughput_ideal : float;
}

let evaluate ?solver base ~k pattern =
  let p = { base with Params.k; pattern } in
  let report =
    Tolerance.network ?solver ~ideal_method:Tolerance.Zero_delay p
  in
  let real = report.Tolerance.real and ideal = report.Tolerance.ideal in
  let n = Params.num_processors p in
  {
    k;
    num_processors = n;
    pattern;
    d_avg = Bottleneck.(analyze p).d_avg;
    measures = real;
    ideal_network = ideal;
    tol_network = report.Tolerance.tol;
    throughput = Measures.system_throughput real ~num_processors:n;
    throughput_ideal = Measures.system_throughput ideal ~num_processors:n;
  }

let sweep ?solver base ~ks ~patterns =
  List.concat_map
    (fun k -> List.map (fun pattern -> evaluate ?solver base ~k pattern) patterns)
    ks

let pattern_to_string = function
  | Access.Geometric p_sw -> Printf.sprintf "geometric(%g)" p_sw
  | Access.Uniform -> "uniform"
  | Access.Explicit _ -> "explicit"

let pp_point ppf p =
  Fmt.pf ppf
    "@[k=%2d P=%3d %-14s d_avg=%.3f U_p=%.4f tol_net=%.4f P.X=%.3f \
     (ideal %.3f) S_obs=%.2f L_obs=%.2f@]"
    p.k p.num_processors
    (pattern_to_string p.pattern)
    p.d_avg p.measures.Measures.u_p p.tol_network p.throughput
    p.throughput_ideal p.measures.Measures.s_obs p.measures.Measures.l_obs
