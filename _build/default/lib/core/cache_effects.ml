type t = {
  cache_lines : int;
  working_set : int;
  miss_rate_floor : float;
  cycles_per_access : float;
}

let default =
  {
    cache_lines = 1024;
    working_set = 256;
    miss_rate_floor = 0.05;
    cycles_per_access = 1.;
  }

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.cache_lines < 1 then err "cache_lines %d must be >= 1" t.cache_lines
  else if t.working_set < 1 then err "working_set %d must be >= 1" t.working_set
  else if t.miss_rate_floor <= 0. || t.miss_rate_floor > 1. then
    err "miss_rate_floor %g must lie in (0, 1]" t.miss_rate_floor
  else if t.cycles_per_access <= 0. then
    err "cycles_per_access %g must be > 0" t.cycles_per_access
  else Ok t

let validate_exn t =
  match validate t with Ok t -> t | Error msg -> invalid_arg ("Cache_effects: " ^ msg)

let hit_rate t ~n_t =
  let t = validate_exn t in
  if n_t < 1 then invalid_arg "Cache_effects.hit_rate: n_t >= 1";
  let resident =
    Float.min 1.
      (float_of_int t.cache_lines /. float_of_int (n_t * t.working_set))
  in
  (* A thread hits when the line is resident and the access is not an
     irreducible miss. *)
  resident *. (1. -. t.miss_rate_floor)

let runlength t ~n_t =
  let miss = 1. -. hit_rate t ~n_t in
  t.cycles_per_access /. miss

let apply t ~base ~n_t =
  Params.validate_exn
    { base with Params.n_t; runlength = runlength t ~n_t }

type point = {
  n_t : int;
  effective_runlength : float;
  hit_rate : float;
  measures : Measures.t;
  tol_network : float;
}

let evaluate ?solver t ~base ~n_t =
  let p = apply t ~base ~n_t in
  let report = Tolerance.network ?solver p in
  {
    n_t;
    effective_runlength = p.Params.runlength;
    hit_rate = hit_rate t ~n_t;
    measures = report.Tolerance.real;
    tol_network = report.Tolerance.tol;
  }

let sweep ?solver t ~base ~n_ts =
  List.map (fun n_t -> evaluate ?solver t ~base ~n_t) n_ts

let best_thread_count ?solver t ~base ~max_threads =
  if max_threads < 1 then
    invalid_arg "Cache_effects.best_thread_count: max_threads >= 1";
  let points = sweep ?solver t ~base ~n_ts:(List.init max_threads succ) in
  match points with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun acc pt ->
        if pt.measures.Measures.u_p > acc.measures.Measures.u_p then pt else acc)
      first rest

let pp_point ppf pt =
  Fmt.pf ppf
    "@[n_t=%2d hit=%.3f R_eff=%6.2f U_p=%.4f tol_net=%.4f@]" pt.n_t
    pt.hit_rate pt.effective_runlength pt.measures.Measures.u_p pt.tol_network
