(** A small suite of classic SPMD communication kernels as access
    patterns.

    Each kernel is the communication skeleton of a well-known parallel
    computation, expressed as the probability matrix [em_{i,j}] its memory
    accesses induce on the machine — ready to feed the model through
    {!Lattol_topology.Access.Explicit}.  Together with {!Workload}'s loop
    and grid builders this gives the paper's "program workload" knob a
    concrete library: the intro's claim that the tolerance index guides
    "computation decomposition and data distribution" can be exercised on
    patterns harder than a stencil.

    All kernels are parameterized by the fraction [compute] of accesses
    that stay local (the computation part); the remaining accesses follow
    the kernel's communication pattern. *)

open Lattol_topology

type kernel =
  | Nearest_neighbour
      (** each remote access goes to one of the topology neighbours,
          uniformly — an idealized halo exchange *)
  | Transpose
      (** node with coordinates (x, y) exchanges with (y, x): the matrix
          transpose / corner-turn pattern (2-D machines) *)
  | Reduction
      (** binary-tree reduction over node indices: node [i] sends to
          [i / 2]; node 0 only computes *)
  | Butterfly of int
      (** stage [s] of an FFT/hypercube butterfly: node [i] exchanges with
          [i xor 2^s] (indices beyond the node count wrap) *)
  | Ring_shift
      (** systolic shift: node [i] sends to [(i + 1) mod P] in node
          numbering — cheap on a ring, strided on higher-dimensional
          machines *)
  | All_to_all  (** uniform — every remote module equally likely *)

val matrix : kernel -> Topology.t -> compute:float -> float array array
(** The induced access matrix; [compute] in [[0, 1]] is the local
    fraction.  Raises [Invalid_argument] for kernels that do not fit the
    topology (e.g. {!Transpose} on a ring). *)

val to_params : ?n_t:int -> base:Params.t -> kernel -> compute:float ->
  runlength:float -> Params.t

val kernel_to_string : kernel -> string

val all : num_nodes:int -> kernel list
(** The kernels applicable to a machine of that size (butterfly stages up
    to the largest power of two below the node count). *)

val compare_kernels :
  ?n_t:int -> base:Params.t -> compute:float -> runlength:float ->
  kernel list -> (kernel * Measures.t * float) list
(** Solve each kernel's machine and report [(kernel, measures,
    tol_network)]. *)
