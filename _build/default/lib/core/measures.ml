type t = {
  u_p : float;
  lambda : float;
  lambda_net : float;
  s_obs : float;
  l_obs : float;
  cycle_time : float;
  util_memory : float;
  util_switch_in : float;
  util_switch_out : float;
  util_sync : float;
  su_obs : float;
  queue_processor : float;
  queue_memory : float;
  queue_network : float;
  iterations : int;
  converged : bool;
}

let system_throughput t ~num_processors = float_of_int num_processors *. t.lambda

let pp ppf t =
  Fmt.pf ppf
    "@[<v>U_p        = %.4f%s@,lambda     = %.4f@,lambda_net = %.4f@,\
     S_obs      = %.3f@,L_obs      = %.3f@,cycle      = %.3f@,\
     util: mem %.3f, sw_in %.3f, sw_out %.3f, su %.3f@,\
     queue: proc %.3f, mem %.3f, net %.3f@]"
    t.u_p
    (if t.converged then "" else " (UNCONVERGED)")
    t.lambda t.lambda_net t.s_obs t.l_obs t.cycle_time t.util_memory
    t.util_switch_in t.util_switch_out t.util_sync t.queue_processor
    t.queue_memory t.queue_network

let pp_row ppf t =
  Fmt.pf ppf "%8.4f %8.4f %8.4f %8.3f %8.3f" t.u_p t.lambda t.lambda_net
    t.s_obs t.l_obs
