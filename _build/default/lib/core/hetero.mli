(** Heterogeneous workloads: several thread kinds per processor.

    The paper's SPMD workload gives every thread the same runlength and
    access behaviour.  Real nodes mix kinds — e.g. latency-sensitive
    interactive threads besides throughput-oriented batch threads — and
    the multi-class machinery underneath ({!Lattol_queueing.Amva}) handles
    that directly: each (processor, kind) pair becomes its own customer
    class.  This module builds and solves such machines and reports
    per-kind measures, answering questions like "how much does adding
    batch threads cost the interactive ones' tolerance?".

    Caveat: with kind-dependent runlengths the processor is an FCFS
    station with class-dependent service, so the product-form exactness
    guarantee is lost; the solvers use the expected-backlog approximation
    (see {!Lattol_queueing.Mva}). *)

open Lattol_topology

type group = {
  name : string;
  count : int;             (** threads of this kind on every processor *)
  runlength : float;
  p_remote : float;
  pattern : Access.pattern;
}

type group_measures = {
  group : group;
  lambda : float;          (** per-processor activation rate of this kind *)
  occupancy : float;       (** processor time fraction this kind consumes *)
  lambda_net : float;
  s_obs : float;           (** observed one-way network latency, [nan] if local *)
  l_obs : float;
  cycle_time : float;
}

type t = {
  groups : group_measures list;
  u_p : float;             (** total processor utilization *)
  converged : bool;
}

val solve :
  ?solver:[ `Amva | `Linearizer ] -> base:Params.t -> group list -> t
(** Solve the machine described by [base] (topology, [L], [S], ports, SU)
    populated with the given kinds on every processor.  [base]'s own
    [n_t]/[runlength]/[p_remote]/[pattern] are ignored.  Raises
    [Invalid_argument] on empty or invalid groups, or on a non-torus
    machine (the expansion relies on node symmetry only for reporting;
    any torus works). *)

val pp_group : Format.formatter -> group_measures -> unit
