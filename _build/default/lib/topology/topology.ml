type kind = Torus | Mesh

type t = {
  kind : kind;
  dims : int array;     (* nodes per dimension, innermost first *)
  strides : int array;  (* mixed-radix strides for node numbering *)
  num_nodes : int;
}

type node = int

let create_nd kind ~dims =
  if dims = [] then invalid_arg "Topology.create_nd: at least one dimension";
  List.iter
    (fun k -> if k < 1 then invalid_arg "Topology.create_nd: dims >= 1")
    dims;
  let dims = Array.of_list dims in
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for d = 1 to n - 1 do
    strides.(d) <- strides.(d - 1) * dims.(d - 1)
  done;
  { kind; dims; strides; num_nodes = Array.fold_left ( * ) 1 dims }

let hypercube ~dimensions =
  if dimensions < 1 then invalid_arg "Topology.hypercube: dimensions >= 1";
  create_nd Torus ~dims:(List.init dimensions (fun _ -> 2))

let create kind ~k =
  if k < 1 then invalid_arg "Topology.create: k >= 1";
  create_nd kind ~dims:[ k; k ]

let kind t = t.kind

let dims t = Array.to_list t.dims

let num_dimensions t = Array.length t.dims

let k t =
  (* Nodes along the first dimension — the paper's [k] for square tori. *)
  t.dims.(0)

let num_nodes t = t.num_nodes

let check_node t n name =
  if n < 0 || n >= t.num_nodes then
    Format.kasprintf invalid_arg "Topology.%s: node out of range" name

let coord t n d = n / t.strides.(d) mod t.dims.(d)

let coords_nd t n =
  check_node t n "coords";
  Array.init (Array.length t.dims) (coord t n)

let of_coords_nd t cs =
  if Array.length cs <> Array.length t.dims then
    invalid_arg "Topology.of_coords_nd: dimension mismatch";
  let acc = ref 0 in
  Array.iteri
    (fun d c ->
      if c < 0 || c >= t.dims.(d) then
        invalid_arg "Topology.of_coords_nd: out of range";
      acc := !acc + (c * t.strides.(d)))
    cs;
  !acc

let coords t n =
  if Array.length t.dims <> 2 then
    invalid_arg "Topology.coords: 2-dimensional networks only (use coords_nd)";
  check_node t n "coords";
  (coord t n 0, coord t n 1)

let of_coords t (x, y) =
  if Array.length t.dims <> 2 then
    invalid_arg "Topology.of_coords: 2-dimensional networks only";
  of_coords_nd t [| x; y |]

(* Signed step along one axis towards the target, shorter way round on the
   torus with a fixed tie-break so routes are deterministic. *)
let axis_delta t d a b =
  match t.kind with
  | Mesh -> compare b a
  | Torus ->
    let k = t.dims.(d) in
    let fwd = (b - a + k) mod k in
    let bwd = (a - b + k) mod k in
    if fwd = 0 then 0 else if fwd <= bwd then 1 else -1

let axis_distance t d a b =
  match t.kind with
  | Mesh -> abs (b - a)
  | Torus ->
    let k = t.dims.(d) in
    let fwd = (b - a + k) mod k in
    min fwd (k - fwd)

let distance t m n =
  check_node t m "distance";
  check_node t n "distance";
  let acc = ref 0 in
  for d = 0 to Array.length t.dims - 1 do
    acc := !acc + axis_distance t d (coord t m d) (coord t n d)
  done;
  !acc

let max_distance t =
  let acc = ref 0 in
  Array.iter
    (fun k ->
      acc := !acc + (match t.kind with Mesh -> k - 1 | Torus -> k / 2))
    t.dims;
  !acc

let route t ~src ~dst =
  check_node t src "route";
  check_node t dst "route";
  let target = coords_nd t dst in
  let rec go current acc =
    (* Dimension-order: finish dimension 0, then 1, ... *)
    let rec find_dim d =
      if d = Array.length t.dims then None
      else if current.(d) <> target.(d) then Some d
      else find_dim (d + 1)
    in
    match find_dim 0 with
    | None -> List.rev acc
    | Some d ->
      let k = t.dims.(d) in
      let step = axis_delta t d current.(d) target.(d) in
      current.(d) <- ((current.(d) + step) mod k + k) mod k;
      go current (of_coords_nd t current :: acc)
  in
  go (coords_nd t src) []

let neighbours t n =
  check_node t n "neighbours";
  let cs = coords_nd t n in
  let acc = ref [] in
  for d = Array.length t.dims - 1 downto 0 do
    let k = t.dims.(d) in
    let candidates =
      match t.kind with
      | Torus -> if k = 1 then [] else [ (cs.(d) + 1) mod k; (cs.(d) - 1 + k) mod k ]
      | Mesh ->
        List.filter (fun c -> c >= 0 && c < k) [ cs.(d) + 1; cs.(d) - 1 ]
    in
    List.iter
      (fun c ->
        if c <> cs.(d) then begin
          let moved = Array.copy cs in
          moved.(d) <- c;
          acc := of_coords_nd t moved :: !acc
        end)
      (List.sort_uniq compare candidates)
  done;
  List.sort_uniq compare !acc

let distance_counts t src =
  check_node t src "distance_counts";
  let counts = Array.make (max_distance t + 1) 0 in
  for n = 0 to t.num_nodes - 1 do
    let d = distance t src n in
    counts.(d) <- counts.(d) + 1
  done;
  counts

let nodes_at_distance t src h =
  List.filter (fun n -> distance t src n = h) (List.init t.num_nodes Fun.id)

let is_vertex_transitive t = t.kind = Torus || t.num_nodes = 1

let translate t n ~by =
  if t.kind <> Torus then
    invalid_arg "Topology.translate: torus only";
  check_node t n "translate";
  check_node t by "translate";
  let cs = coords_nd t n and bs = coords_nd t by in
  let moved =
    Array.init (Array.length cs) (fun d -> (cs.(d) + bs.(d)) mod t.dims.(d))
  in
  of_coords_nd t moved

let subtract t n ~by =
  if t.kind <> Torus then invalid_arg "Topology.subtract: torus only";
  check_node t n "subtract";
  check_node t by "subtract";
  let cs = coords_nd t n and bs = coords_nd t by in
  let moved =
    Array.init (Array.length cs) (fun d ->
        (cs.(d) - bs.(d) + t.dims.(d)) mod t.dims.(d))
  in
  of_coords_nd t moved

let pp ppf t =
  Fmt.pf ppf "%s %a"
    (match t.kind with Torus -> "torus" | Mesh -> "mesh")
    Fmt.(array ~sep:(any "x") int)
    t.dims
