(** Remote-memory access patterns (Section 2 of the paper).

    A thread on node [i] directs each memory access to its local module with
    probability [1 - p_remote] and to a remote module otherwise.  Remote
    targets follow one of two patterns:

    - {b Geometric}: the probability that the access covers distance [h] is
      [p_sw^h / a] with [a = sum_{h=1}^{d_max} p_sw^h] (truncated geometric
      over distances), shared uniformly among the nodes at that distance.
      Low [p_sw] means high locality.
    - {b Uniform}: every one of the [P - 1] remote modules is equally
      likely.

    The matrix produced by {!matrix} is exactly the paper's visit ratio
    [em_{i,j}] of class-[i] threads to the memory at node [j]. *)

type pattern =
  | Geometric of float  (** locality parameter [p_sw], in (0, 1) *)
  | Uniform
  | Explicit of float array array
      (** a full [P x P] row-stochastic matrix of per-source target
          probabilities, diagonal = local fraction; this is the paper's
          "by changing [em_{i,j}], our model is applicable to other
          distributions".  The [p_remote] argument of {!create} is ignored
          and derived from the diagonal instead. *)

type t

val create : Topology.t -> pattern -> p_remote:float -> t
(** Precomputes per-source access probabilities.  [p_remote] must lie in
    [[0, 1]].  Raises [Invalid_argument] on bad parameters, including a
    geometric pattern on a single-node network, or an [Explicit] matrix of
    the wrong shape / with rows not summing to 1. *)

val topology : t -> Topology.t

val pattern : t -> pattern

val p_remote : t -> float
(** Mean remote fraction over sources (constant for the built-in
    patterns). *)

val remote_fraction : t -> src:Topology.node -> float
(** [1 - prob t ~src ~dst:src]. *)

val is_translation_invariant : t -> bool
(** True when the pattern is identical from every node up to torus
    translation (built-in patterns on a torus); [Explicit] matrices are
    conservatively reported as non-invariant. *)

val prob : t -> src:Topology.node -> dst:Topology.node -> float
(** [prob t ~src ~dst] is [em_{src,dst}]: the probability that a memory
    access issued at [src] targets the module at [dst].  Rows sum to 1. *)

val matrix : t -> float array array
(** Full [P x P] matrix of {!prob} (rows indexed by source). *)

val distance_pmf : t -> src:Topology.node -> float array
(** [distance_pmf t ~src].(h) is the probability that an access from [src]
    travels exactly [h] hops (index 0 is the local-access probability). *)

val average_distance : t -> src:Topology.node -> float
(** Mean hops covered by a {e remote} access from [src] (the paper's
    [d_avg]); [nan] when [p_remote = 0]. *)

val pp : Format.formatter -> t -> unit
