lib/topology/access.ml: Array Float Fmt Format Printf Topology
