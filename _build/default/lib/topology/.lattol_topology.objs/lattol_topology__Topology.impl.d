lib/topology/topology.ml: Array Fmt Format Fun List
