lib/topology/topology.mli: Format
