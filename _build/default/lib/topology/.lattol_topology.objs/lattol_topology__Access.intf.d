lib/topology/access.mli: Format Topology
