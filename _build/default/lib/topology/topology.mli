(** Interconnection-network topologies: k-ary n-cubes.

    The paper's machine is a [k x k] 2-dimensional torus of processing
    elements (Figure 1); this module generalizes to arbitrary-dimension
    tori and meshes (rings, 3-D cubes, ...) so that the dimensionality
    trade-off itself can be studied.  Nodes are numbered mixed-radix with
    the first dimension innermost; a [k x k] network therefore numbers
    row-major, matching the paper.  Distances are minimal hop counts;
    routes follow deterministic dimension-order routing, taking the
    shorter way around each ring on the torus with a fixed tie-break so
    that paths are reproducible. *)

type kind =
  | Torus  (** wraparound links in every dimension (the paper's default) *)
  | Mesh   (** open boundaries *)

type t

type node = int

val create : kind -> k:int -> t
(** [create kind ~k] builds the paper's [k x k] two-dimensional network.
    [k >= 1]. *)

val create_nd : kind -> dims:int list -> t
(** [create_nd kind ~dims] builds a general network with [List.nth dims d]
    nodes along dimension [d] (at least one dimension, all [>= 1]).
    [create kind ~k = create_nd kind ~dims:[k; k]]. *)

val hypercube : dimensions:int -> t
(** The binary n-cube: a torus with two nodes per dimension (each
    dimension's +1 and -1 neighbours coincide), [2^dimensions] nodes,
    degree and diameter both [dimensions]. *)

val kind : t -> kind

val k : t -> int
(** Nodes along the first dimension (the paper's [k] for square tori). *)

val dims : t -> int list

val num_dimensions : t -> int

val num_nodes : t -> int

val coords : t -> node -> int * int
(** [(x, y)] coordinates; only valid on 2-dimensional networks. *)

val of_coords : t -> int * int -> node

val coords_nd : t -> node -> int array
(** Coordinates in any dimension. *)

val of_coords_nd : t -> int array -> node

val distance : t -> node -> node -> int
(** Minimal hop count between two nodes. *)

val max_distance : t -> int
(** Network diameter ([d_max] in the paper). *)

val route : t -> src:node -> dst:node -> node list
(** Dimension-order route from [src] to [dst]: the sequence of nodes the
    message visits {e after} leaving [src], ending with [dst] (empty when
    [src = dst]).  Its length equals [distance t src dst]. *)

val neighbours : t -> node -> node list
(** Directly connected nodes (each once, sorted). *)

val distance_counts : t -> node -> int array
(** [distance_counts t src] maps distance [h] (index) to the number of nodes
    at distance exactly [h] from [src]; index 0 counts only [src] itself.
    On a torus this is independent of [src]. *)

val nodes_at_distance : t -> node -> int -> node list
(** All nodes at exactly the given distance from [src]. *)

val is_vertex_transitive : t -> bool
(** True for tori (every node sees the same distance structure). *)

val translate : t -> node -> by:node -> node
(** Coordinate-wise addition modulo the dimensions (torus only): the
    automorphism mapping node 0 to [by]. *)

val subtract : t -> node -> by:node -> node
(** Inverse of {!translate}: coordinate-wise subtraction (torus only). *)

val pp : Format.formatter -> t -> unit
