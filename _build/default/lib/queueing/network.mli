(** Multi-class closed (product-form) queueing networks.

    A network is a set of service stations visited by a fixed population of
    customers partitioned into classes.  Class [c] has population
    [population.(c)]; its customers repeatedly cycle through the stations,
    making [visits.(c).(m)] visits to station [m] (relative to one cycle,
    i.e. one visit to the class's reference activity) and requiring
    [service.(c).(m)] mean service time per visit.

    Stations are either FCFS queueing stations (single server) or delay
    (infinite-server) stations.  With exponential service, class-independent
    rates at FCFS stations and Markovian routing this is a BCMP/Gordon-Newell
    network with a product-form solution, which is what the MVA solvers in
    {!Mva} and {!Amva} compute.  Class-dependent FCFS service times are
    accepted (the approximation treats them as such), with the caveat that
    exactness guarantees then no longer apply. *)

type station_kind =
  | Queueing  (** single-server FCFS *)
  | Delay     (** infinite server: no queueing, pure latency *)
  | Multi_server of int
      (** [c] identical servers sharing one FCFS queue ([c >= 1]); models
          multiported memories and pipelined switches.  Exact in
          {!Convolution} and {!Lattol_markov.Qn_ctmc} (load-dependent
          rates); {!Mva} and {!Amva} use the conditional-wait
          approximation (an arrival queues only behind the excess beyond
          [c - 1] waiting customers, served at the pooled rate). *)

type job_class = {
  class_name : string;
  population : int;            (** number of customers, >= 0 *)
  visits : float array;        (** per-station visit ratios, >= 0 *)
  service : float array;       (** per-station mean service time per visit *)
}

type t

val make : stations:(string * station_kind) array -> classes:job_class array -> t
(** Builds and validates a network.  Raises [Invalid_argument] with a
    descriptive message on dimension mismatches, negative parameters, or a
    class with no demand anywhere. *)

val num_stations : t -> int

val num_classes : t -> int

val station_name : t -> int -> string

val station_kind : t -> int -> station_kind

val class_name : t -> int -> string

val population : t -> int -> int

val populations : t -> int array

val total_population : t -> int

val visit : t -> cls:int -> station:int -> float

val service_time : t -> cls:int -> station:int -> float

val demand : t -> cls:int -> station:int -> float
(** [demand] = visit ratio x mean service time: the total service
    requirement per cycle ([D_{c,m}]). *)

val total_demand : t -> cls:int -> float
(** Sum of demands over all stations: the zero-contention cycle time. *)

val bottleneck : t -> cls:int -> int
(** Station with the largest demand for the class (ties to the lowest
    index). *)

val with_population : t -> int array -> t
(** Same network with new per-class populations. *)

val pp : Format.formatter -> t -> unit
