lib/queueing/linearizer.ml: Amva Array Float Network Solution
