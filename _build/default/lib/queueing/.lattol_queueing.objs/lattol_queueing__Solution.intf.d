lib/queueing/solution.mli: Format Network
