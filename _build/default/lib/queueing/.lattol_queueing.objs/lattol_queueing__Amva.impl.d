lib/queueing/amva.ml: Array Float Logs Network Solution
