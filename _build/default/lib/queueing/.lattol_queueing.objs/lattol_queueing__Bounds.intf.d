lib/queueing/bounds.mli: Format Network
