lib/queueing/linearizer.mli: Amva Network Solution
