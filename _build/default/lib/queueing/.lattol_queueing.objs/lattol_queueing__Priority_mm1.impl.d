lib/queueing/priority_mm1.ml: Array Float Printf
