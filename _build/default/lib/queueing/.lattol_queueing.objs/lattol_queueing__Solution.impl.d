lib/queueing/solution.ml: Array Float Fmt Network
