lib/queueing/priority_mm1.mli:
