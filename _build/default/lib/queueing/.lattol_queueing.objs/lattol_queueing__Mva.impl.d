lib/queueing/mva.ml: Array Float Format Network Solution
