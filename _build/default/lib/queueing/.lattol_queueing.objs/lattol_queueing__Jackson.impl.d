lib/queueing/jackson.ml: Array Float Fmt Format
