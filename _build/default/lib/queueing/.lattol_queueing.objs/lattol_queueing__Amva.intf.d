lib/queueing/amva.mli: Network Solution
