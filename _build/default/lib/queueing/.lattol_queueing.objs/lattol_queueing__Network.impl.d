lib/queueing/network.ml: Array Float Fmt Format
