lib/queueing/mva.mli: Network Solution
