lib/queueing/jackson.mli: Format
