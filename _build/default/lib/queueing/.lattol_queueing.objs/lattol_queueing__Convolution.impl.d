lib/queueing/convolution.ml: Array Network Solution
