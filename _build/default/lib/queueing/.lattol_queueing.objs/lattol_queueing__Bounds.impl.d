lib/queueing/bounds.ml: Float Fmt Network
