lib/queueing/network.mli: Format
