lib/queueing/convolution.mli: Network Solution
