(** Exact Mean Value Analysis (Reiser & Lavenberg 1980).

    Computes the exact product-form solution of a closed multi-class network
    by recursing over all population vectors [0 <= n <= N].  The state count
    is [prod_c (N_c + 1)], so this is the ground-truth solver for small
    configurations — the role the paper assigns to "state space techniques" —
    against which the approximate solver {!Amva} is validated.

    For FCFS stations with class-dependent service times the waiting-time
    step uses the expected-backlog form
    [w_{c,m} = s_{c,m} + sum_j s_{j,m} q_{j,m}(N - e_c)], which coincides
    with the classical arrival-theorem formula when service times are
    class-independent (the exactness condition).  [Multi_server] stations
    are handled by the conditional-wait approximation and are therefore
    not exact here — use {!Convolution} (single class) or
    {!Lattol_markov.Qn_ctmc} for exact multiserver answers. *)

val solve : ?max_states:int -> Network.t -> Solution.t
(** [solve network] is the exact solution.  Raises [Invalid_argument] if the
    population-vector lattice exceeds [max_states] (default [2_000_000])
    points. *)

val num_states : Network.t -> int
(** Size of the population lattice the recursion would traverse. *)
