(** The Linearizer approximate MVA (Chandy & Neuse, 1982).

    Bard-Schweitzer ({!Amva}) assumes that removing one customer changes
    only that customer's own class proportionally.  Linearizer refines this
    with first-order correction terms

    {v F_{c,m}(j) = q_{c,m}(N - e_j) / N_c(N - e_j)  -  q_{c,m}(N) / N_c v}

    estimated by actually solving the [C] reduced-population systems and
    iterating.  Cost is roughly [(C + 1) x outer] Bard-Schweitzer solves;
    accuracy is typically several times better — the test suite holds it
    strictly closer to exact MVA than {!Amva} on its cross-checks. *)

val solve :
  ?options:Amva.options -> ?outer_iterations:int -> Network.t -> Solution.t
(** [solve network] runs the Linearizer ([outer_iterations] defaults to 3,
    which is the standard choice; [options] tune the inner fixed-point
    iterations).  The result's [iterations] counts all inner sweeps;
    [converged] reports the final core solve. *)
