(** Approximate Mean Value Analysis (Bard-Schweitzer), the paper's Figure 3
    algorithm.

    The exact MVA recursion needs every population vector below [N]; the
    approximation replaces the queue lengths seen by an arriving class-[c]
    customer with the fixed-point estimate

    {v q_{j,m}(N - e_c)  ~=  q_{j,m}(N)            for j <> c
   q_{c,m}(N - e_c)  ~=  q_{c,m}(N) (N_c - 1) / N_c v}

    and iterates (queue lengths -> waiting times -> throughputs -> queue
    lengths) to convergence.  Cost per sweep is [O(C^2 M)] regardless of the
    populations, which is what makes the paper's 100-processor experiments
    feasible. *)

type options = {
  tolerance : float;
      (** stop when the largest queue-length change in a sweep is below
          this (the paper's [difference > tolerance] test) *)
  max_iterations : int;
  damping : float;
      (** new value = damping x old + (1 - damping) x update; 0 disables *)
}

val default_options : options
(** tolerance 1e-8, 10_000 iterations, no damping. *)

val solve : ?options:options -> Network.t -> Solution.t
(** Fixed point of the Bard-Schweitzer iteration.  [converged] is false in
    the result if the iteration cap was reached; the last iterate is still
    returned so callers can inspect it. *)
