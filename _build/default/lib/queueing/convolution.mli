(** Buzen's convolution algorithm (single class).

    Computes the normalizing constant [G(n)] of a single-class closed
    product-form network and derives throughput, utilizations and queue
    lengths from it.  It is an independent exact method — a different
    numerical route to the same answers as {!Mva} — used in the test suite
    to cross-validate the solvers against each other.

    Numerical note: [G] grows/shrinks geometrically, so demands are
    internally rescaled by the largest demand to keep the recursion in
    floating-point range. *)

val solve : Network.t -> Solution.t
(** Raises [Invalid_argument] if the network has more than one class with a
    nonzero population. *)

val normalizing_constants : Network.t -> float array
(** [G(0); G(1); ...; G(N)] for the (rescaled) single-class network —
    exposed for the unit tests.  The rescaling makes only ratios of
    consecutive entries meaningful. *)
