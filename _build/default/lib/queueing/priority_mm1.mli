(** Non-preemptive head-of-line priority M/M/1 (Cobham's formulas).

    The closed-form counterpart of the simulator's priority stations
    ({!Lattol_sim.Station} with [priority_levels]): Poisson classes share
    one exponential server, higher classes go first, service in progress is
    never interrupted.  Class [k]'s mean waiting time is

    {v W_k = W0 / ((1 - sigma_{k-1}) (1 - sigma_k)) v}

    with [W0] the mean residual service at arrival and [sigma_k] the
    cumulative utilization of classes [0..k].  The test suite holds the DES
    station to these values; the local-memory-priority ablation uses them
    to explain {e why} favouring local accesses starves remote ones. *)

type class_spec = {
  arrival_rate : float;  (** Poisson rate, >= 0 *)
  service_time : float;  (** mean exponential service, > 0 *)
}

type t

val make : class_spec array -> t
(** Classes in priority order (index 0 served first).  Raises
    [Invalid_argument] on malformed input or total utilization >= 1. *)

val utilization : t -> float
(** Total server utilization. *)

val waiting_time : t -> cls:int -> float
(** Mean time in queue (excluding service) for the class. *)

val response_time : t -> cls:int -> float
(** Waiting + service. *)

val mean_queue_length : t -> cls:int -> float
(** Mean number of class members in the system (Little). *)

val fcfs_waiting_time : t -> float
(** The priority-free baseline: M/M/1 FCFS waiting time of the merged
    stream with the same total load (exponential mixture approximated by
    its mean — exact when all classes share one service time). *)
