let the_class network =
  let cls = ref None in
  for c = 0 to Network.num_classes network - 1 do
    if Network.population network c > 0 then
      match !cls with
      | None -> cls := Some c
      | Some _ ->
        invalid_arg "Convolution.solve: more than one non-empty class"
  done;
  match !cls with
  | Some c -> c
  | None -> invalid_arg "Convolution.solve: no customers"

(* Per-station occupancy factor f(k) = (D/scale)^k / prod_{j=1..k} alpha(j),
   where alpha is the load-dependent rate multiplier: 1 for a single
   server, min(j, c) for c servers, j for a delay station. *)
let rate_multiplier kind j =
  match kind with
  | Network.Queueing -> 1.
  | Network.Multi_server c -> float_of_int (min j c)
  | Network.Delay -> float_of_int j

let occupancy_factors network cls scale m n =
  let d = Network.demand network ~cls ~station:m /. scale in
  let kind = Network.station_kind network m in
  let f = Array.make (n + 1) 0. in
  f.(0) <- 1.;
  for k = 1 to n do
    f.(k) <- f.(k - 1) *. d /. rate_multiplier kind k
  done;
  f

(* G over jobs 0..n with demands rescaled by the max demand to keep the
   recursion in floating-point range. *)
let constants network cls =
  let num_st = Network.num_stations network in
  let n = Network.population network cls in
  let scale = ref 0. in
  for m = 0 to num_st - 1 do
    let d = Network.demand network ~cls ~station:m in
    if d > !scale then scale := d
  done;
  let scale = !scale in
  let g = Array.make (n + 1) 0. in
  g.(0) <- 1.;
  for m = 0 to num_st - 1 do
    if Network.demand network ~cls ~station:m > 0. then begin
      match Network.station_kind network m with
      | Network.Queueing ->
        (* Single server: f(k) = r^k allows the in-place O(N) form
           g_new(k) = g_old(k) + r * g_new(k-1). *)
        let r = Network.demand network ~cls ~station:m /. scale in
        for k = 1 to n do
          g.(k) <- g.(k) +. (r *. g.(k - 1))
        done
      | Network.Delay | Network.Multi_server _ ->
        let f = occupancy_factors network cls scale m n in
        let prev = Array.copy g in
        for k = 1 to n do
          let acc = ref 0. in
          for j = 0 to k do
            acc := !acc +. (f.(j) *. prev.(k - j))
          done;
          g.(k) <- !acc
        done
    end
  done;
  (g, scale)

(* Remove one station's contribution: g_without(k) =
   g_with(k) - sum_{j>=1} f(j) g_without(k - j).  Exact deconvolution of
   the normalizing-constant sequence. *)
let deconvolve g f =
  let n = Array.length g - 1 in
  let out = Array.make (n + 1) 0. in
  out.(0) <- g.(0);
  for k = 1 to n do
    let acc = ref g.(k) in
    for j = 1 to k do
      acc := !acc -. (f.(j) *. out.(k - j))
    done;
    out.(k) <- !acc
  done;
  out

let normalizing_constants network =
  let cls = the_class network in
  fst (constants network cls)

let solve network =
  let cls = the_class network in
  let num_cls = Network.num_classes network in
  let num_st = Network.num_stations network in
  let n = Network.population network cls in
  let g, scale = constants network cls in
  let x = g.(n - 1) /. g.(n) /. scale in
  (* Queue lengths from the marginal distribution
     P(n_m = k) = f_m(k) G_without_m(N - k) / G(N). *)
  let queue = Array.make_matrix num_cls num_st 0. in
  let residence = Array.make_matrix num_cls num_st 0. in
  for m = 0 to num_st - 1 do
    let d = Network.demand network ~cls ~station:m in
    if d > 0. then begin
      (match Network.station_kind network m with
      | Network.Delay ->
        (* Infinite server: mean customers = X * D directly. *)
        queue.(cls).(m) <- x *. d
      | Network.Queueing | Network.Multi_server _ ->
        let f = occupancy_factors network cls scale m n in
        let g_without = deconvolve g f in
        let mean = ref 0. in
        for k = 1 to n do
          mean := !mean +. (float_of_int k *. f.(k) *. g_without.(n - k))
        done;
        queue.(cls).(m) <- !mean /. g.(n));
      residence.(cls).(m) <- queue.(cls).(m) /. x
    end
  done;
  let throughput = Array.make num_cls 0. in
  throughput.(cls) <- x;
  {
    Solution.network;
    throughput;
    residence;
    queue;
    iterations = 1;
    converged = true;
  }
