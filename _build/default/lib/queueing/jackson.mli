(** Open Jackson networks.

    The closed-network solvers answer "what does a fixed thread population
    achieve"; the open model answers the dual question behind the paper's
    bottleneck analysis (Eqs. 4 and 5): {e given} an offered request rate,
    which station saturates first and what latencies build up on the way.
    Stations are M/M/c queues fed by Poisson exogenous arrivals and
    Markovian routing; in steady state each station behaves as an
    independent M/M/c with the traffic-equation arrival rates. *)

type station = {
  name : string;
  servers : int;         (** [c >= 1] *)
  service_time : float;  (** mean, > 0 *)
}

type t

val make :
  stations:station array -> arrivals:float array -> routing:float array array ->
  t
(** [arrivals.(m)] is the exogenous Poisson rate into station [m];
    [routing.(m).(m')] the probability a completed job moves to [m'] (row
    sums <= 1, the deficit leaves the system).  Raises [Invalid_argument]
    on malformed input or if no job can ever leave the system while work
    arrives. *)

val throughputs : t -> float array
(** Solution of the traffic equations [lambda = arrivals + lambda R]. *)

val utilization : t -> station:int -> float
(** [rho = lambda s / c] at the station. *)

val is_stable : t -> bool
(** Every station's utilization < 1. *)

val bottleneck : t -> int
(** Station with the highest utilization. *)

val mean_queue_length : t -> station:int -> float
(** Stationary mean number in the station (M/M/c formula; infinite when
    unstable). *)

val mean_response_time : t -> station:int -> float
(** Waiting + service per visit (Little on the station). *)

val mean_sojourn : t -> entry:int -> float
(** Expected total time in the system for a job entering at [entry],
    following the routing to eventual departure.  Infinite when unstable,
    [Invalid_argument] if the entry station gets no arrivals by routing or
    exogenously. *)

val capacity : t -> float
(** The largest uniform scaling factor [f] such that arrivals [f *
    arrivals] keep every station stable — how far the offered load is from
    the saturation the paper's Eq. 4 describes. *)

val pp : Format.formatter -> t -> unit
