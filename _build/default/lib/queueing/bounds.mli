(** Operational bounds for single-class closed networks.

    Asymptotic bounds analysis and balanced job bounds give solver-free
    envelopes on throughput.  The paper's "simple bottleneck analysis"
    (Equations 4 and 5) is an instance of the asymptotic upper bound; the
    test suite also uses these to sandwich the MVA solvers. *)

type t = {
  demand_total : float;   (** D: zero-contention cycle time *)
  demand_max : float;     (** D_max: bottleneck demand *)
  demand_avg : float;     (** D / M over queueing stations *)
  population : int;
  x_upper : float;        (** min(N / (D + Z...), 1 / D_max) *)
  x_lower : float;        (** N / (D + (N - 1) D_max) *)
  x_balanced_upper : float;  (** balanced-job upper bound *)
  x_balanced_lower : float;  (** balanced-job lower bound *)
  n_star : float;         (** knee population D / D_max (plus think time) *)
}

val analyze : Network.t -> cls:int -> t
(** Bounds for the given class, which must be the only one with customers.
    Delay-station demand is treated as think time [Z]. *)

val pp : Format.formatter -> t -> unit
