(** Solver output for closed queueing networks.

    All solvers ({!Mva}, {!Amva}, {!Convolution}) produce this record so the
    rest of the system (and the tests) can treat them interchangeably. *)

type t = {
  network : Network.t;
  throughput : float array;
      (** per class: cycles completed per unit time ([lambda_c]) *)
  residence : float array array;
      (** [residence.(c).(m)]: mean total time a class-[c] cycle spends at
          station [m] (visit ratio x per-visit waiting time) *)
  queue : float array array;
      (** [queue.(c).(m)]: mean number of class-[c] customers at station [m] *)
  iterations : int;  (** iterations used (1 for direct methods) *)
  converged : bool;  (** false if an iterative solver hit its cap *)
}

val cycle_time : t -> cls:int -> float
(** Mean time for one complete cycle of a class-[c] customer. *)

val waiting_time : t -> cls:int -> station:int -> float
(** Mean per-visit response time (queueing + service) of class [c] at the
    station; [0.] where the class never visits. *)

val utilization : t -> station:int -> float
(** Total utilization of a station: [sum_c lambda_c * D_{c,m}].  For a
    single-server queueing station this is the busy fraction. *)

val class_utilization : t -> cls:int -> station:int -> float

val queue_total : t -> station:int -> float
(** Mean total customers (all classes) at the station. *)

val littles_law_residual : t -> float
(** Max over classes of [|N_c - lambda_c * cycle_time_c| / max 1 N_c]: a
    consistency audit that must be ~0 for any fixed point of MVA. *)

val pp : Format.formatter -> t -> unit
