(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (Sections 5-8) from the models in this repository, then runs
   Bechamel micro-benchmarks of the solvers themselves.

     dune exec bench/main.exe

   Output layout: one section per paper artifact (Figure 4 ... Figure 11,
   Tables 2-4, Equations 4-5).  Absolute values depend on the parameter
   reconstruction documented in DESIGN.md; the shapes (who wins, where the
   knees fall, what saturates) are the reproduction targets recorded in
   EXPERIMENTS.md. *)

open Lattol_core
open Lattol_topology
module Plot = Lattol_stats.Ascii_plot

let default = Params.default

let section title =
  let bar = String.make 78 '=' in
  Format.printf "@.%s@.%s@.%s@." bar title bar

let subsection title = Format.printf "@.--- %s ---@." title

let p_remotes = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ]

let n_ts = [ 1; 2; 3; 4; 5; 6; 8; 10 ]

(* ------------------------------------------------------------------ *)
(* Equations 4 and 5 *)

let eq4_eq5 () =
  section "Equations 4 and 5 - closed-form bottleneck analysis";
  List.iter
    (fun r ->
      let b = Bottleneck.analyze { default with Params.runlength = r } in
      Format.printf "R = %g: %a@." r Bottleneck.pp b)
    [ 1.; 2. ];
  subsection "Eq. 4 cross-check: model lambda_net ceiling vs 1/(2 d_avg S)";
  let sat = Bottleneck.lambda_net_saturation default in
  List.iter
    (fun pr ->
      let m = Mms.solve { default with Params.p_remote = pr; n_t = 10 } in
      Format.printf
        "  p_remote = %.1f: lambda_net = %.4f (ceiling %.4f, %.0f%%)@." pr
        m.Measures.lambda_net sat
        (100. *. m.Measures.lambda_net /. sat))
    [ 0.4; 0.6; 0.8; 1.0 ];
  subsection
    "Open-model view (M/M/c at offered rate lambda): the latency build-up \
     behind Eq. 4";
  List.iter
    (fun lam ->
      Format.printf "  %a@." Bottleneck.pp_open_view
        (Bottleneck.open_view default ~lambda:lam))
    [ 0.2; 0.5; 0.8; 0.95 ];
  subsection "Eq. 5 cross-check: U_p knee against critical p_remote";
  List.iter
    (fun r ->
      let p = { default with Params.runlength = r; n_t = 8 } in
      let crit = Bottleneck.p_remote_critical p in
      let u pr = (Mms.solve { p with Params.p_remote = pr }).Measures.u_p in
      Format.printf
        "  R = %g: critical p* = %.3f; U_p at p*/2 = %.3f, at p* = %.3f, at \
         min(1, p*+0.3) = %.3f@."
        r crit
        (u (crit /. 2.))
        (u crit)
        (u (Float.min 1. (crit +. 0.3))))
    [ 1.; 2. ]

(* ------------------------------------------------------------------ *)
(* Figures 4 and 5 *)

let grid_figure ~runlength ~fig =
  section
    (Printf.sprintf
       "Figure %d - U_p, S_obs, lambda_net, tol_network vs (n_t, p_remote) at \
        R = %g"
       fig runlength);
  let base = { default with Params.runlength } in
  let header () =
    Format.printf "  n_t \\ p_r";
    List.iter (fun pr -> Format.printf "%7.1f" pr) p_remotes;
    Format.printf "@."
  in
  let grid csv_id name value =
    subsection name;
    ignore
      (Csvout.table csv_id
         ~header:
           ("n_t" :: List.map (fun pr -> Printf.sprintf "p%.1f" pr) p_remotes)
         (fun row ->
           header ();
           List.iter
             (fun nt ->
               Format.printf "  %8d" nt;
               let cells =
                 List.map
                   (fun pr ->
                     let v = value { base with Params.n_t = nt; p_remote = pr } in
                     Format.printf "%7.3f" v;
                     Printf.sprintf "%.6f" v)
                   p_remotes
               in
               row (string_of_int nt :: cells);
               Format.printf "@.")
             n_ts))
  in
  let id suffix = Printf.sprintf "fig%d%s" fig suffix in
  grid (id "a") (Printf.sprintf "Figure %d(a): processor utilization U_p" fig)
    (fun p -> (Mms.solve p).Measures.u_p);
  grid (id "b") (Printf.sprintf "Figure %d(b): observed network latency S_obs" fig)
    (fun p ->
      let s = (Mms.solve p).Measures.s_obs in
      if Float.is_nan s then 0. else s);
  grid (id "c") (Printf.sprintf "Figure %d(c): message rate lambda_net" fig)
    (fun p -> (Mms.solve p).Measures.lambda_net);
  grid (id "d") (Printf.sprintf "Figure %d(d): tolerance index tol_network" fig)
    (fun p -> (Tolerance.network p).Tolerance.tol);
  subsection
    (Printf.sprintf "Figure %d(a) as a chart: U_p vs p_remote, one curve per n_t"
       fig);
  let curves =
    List.map
      (fun nt ->
        {
          Plot.label = Printf.sprintf "n_t = %d" nt;
          points =
            List.map
              (fun pr ->
                (pr, (Mms.solve { base with Params.n_t = nt; p_remote = pr }).Measures.u_p))
              p_remotes;
        })
      [ 1; 4; 8 ]
  in
  Format.printf "%s@."
    (Plot.render ~y_min:0. ~y_max:1. ~x_label:"p_remote" ~y_label:"U_p" curves)

(* ------------------------------------------------------------------ *)
(* Table 2 *)

let table2 () =
  section
    "Table 2 - same S_obs, different tolerance: workload decides, not the \
     latency value";
  let header () =
    Format.printf "  %3s %4s %9s %8s %8s %11s %8s %12s %s@." "R" "n_t"
      "p_remote" "L_obs" "S_obs" "lambda_net" "U_p" "tol_network" "zone"
  in
  let row r nt pr =
    let p = { default with Params.runlength = r; n_t = nt; p_remote = pr } in
    let m = Mms.solve p in
    let t = Tolerance.network p in
    Format.printf "  %3g %4d %9.2f %8.3f %8.3f %11.4f %8.4f %12.4f %s@." r nt
      pr m.Measures.l_obs m.Measures.s_obs m.Measures.lambda_net
      m.Measures.u_p t.Tolerance.tol
      (Tolerance.zone_to_string t.Tolerance.zone)
  in
  (* For each anchor (large n_t, moderate p_remote) find a small-n_t
     configuration whose S_obs matches most closely: the pair lands in
     different tolerance zones despite the same observed latency. *)
  let s_obs_of r nt pr =
    (Mms.solve { default with Params.runlength = r; n_t = nt; p_remote = pr })
      .Measures.s_obs
  in
  let match_partner r nt target =
    let candidates = List.init 19 (fun i -> 0.05 +. (0.05 *. float_of_int i)) in
    List.fold_left
      (fun (best_pr, best_gap) pr ->
        let gap = abs_float (s_obs_of r nt pr -. target) in
        if gap < best_gap then (pr, gap) else (best_pr, best_gap))
      (0.5, infinity) candidates
    |> fst
  in
  List.iter
    (fun (r, anchors) ->
      subsection (Printf.sprintf "R = %g" r);
      header ();
      List.iter
        (fun (nt, pr, partner_nt) ->
          row r nt pr;
          row r partner_nt (match_partner r partner_nt (s_obs_of r nt pr)))
        anchors)
    [
      (1., [ (8, 0.25, 3); (8, 0.20, 2) ]);
      (2., [ (8, 0.30, 3); (6, 0.25, 2) ]);
    ]

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7, Table 3 *)

let figure6 () =
  section "Figure 6 - tol_network vs (n_t, R)";
  List.iter
    (fun pr ->
      subsection (Printf.sprintf "Figure 6: p_remote = %g" pr);
      let rs = [ 0.5; 1.; 2.; 4.; 8.; 16. ] in
      Format.printf "  n_t \\ R ";
      List.iter (fun r -> Format.printf "%7.3g" r) rs;
      Format.printf "@.";
      List.iter
        (fun nt ->
          Format.printf "  %7d" nt;
          List.iter
            (fun r ->
              let p =
                { default with Params.n_t = nt; runlength = r; p_remote = pr }
              in
              Format.printf "%7.3f" (Tolerance.network p).Tolerance.tol)
            rs;
          Format.printf "@.")
        [ 1; 2; 4; 6; 8; 10 ])
    [ 0.2; 0.4 ]

let zone_map ~rows ~cols ~value =
  (* The paper's horizontal planes at 0.5 / 0.8 as a letter map:
     T = tolerated, p = partially, . = not. *)
  List.iter
    (fun r ->
      Format.printf "  %7g  " r;
      List.iter
        (fun c ->
          let glyph =
            match Tolerance.zone_of_index (value ~row:r ~col:c) with
            | Tolerance.Tolerated -> 'T'
            | Tolerance.Partially_tolerated -> 'p'
            | Tolerance.Not_tolerated -> '.'
          in
          Format.printf "%c " glyph)
        cols;
      Format.printf "@.")
    rows

let figure6_zones () =
  subsection
    "Figure 6 zone map (p_remote = 0.4): T = tolerated, p = partial, . = not; \
     rows n_t (down), columns R = 0.5 .. 16";
  let rs = [ 0.5; 1.; 2.; 4.; 8.; 16. ] in
  zone_map
    ~rows:[ 1.; 2.; 4.; 6.; 8.; 10. ]
    ~cols:rs
    ~value:(fun ~row ~col ->
      (Tolerance.network
         { default with Params.n_t = int_of_float row; runlength = col;
           p_remote = 0.4 })
        .Tolerance.tol)

let figure7 () =
  section "Figure 7 - tol_network for n_t x R = constant (thread partitioning)";
  List.iter
    (fun pr ->
      subsection (Printf.sprintf "Figure 7: p_remote = %g" pr);
      Format.printf "  %10s" "work\\R";
      let rs = [ 0.5; 1.; 2.; 4.; 8.; 16.; 32. ] in
      List.iter (fun r -> Format.printf "%8.3g" r) rs;
      Format.printf "@.";
      List.iter
        (fun work ->
          Format.printf "  %10g" work;
          List.iter
            (fun r ->
              let nt = work /. r in
              if Float.is_integer nt && nt >= 1. then begin
                let p =
                  {
                    default with
                    Params.n_t = int_of_float nt;
                    runlength = r;
                    p_remote = pr;
                  }
                in
                Format.printf "%8.3f" (Tolerance.network p).Tolerance.tol
              end
              else Format.printf "%8s" "-")
            rs;
          Format.printf "@.")
        [ 2.; 4.; 8.; 16.; 32.; 64. ])
    [ 0.2; 0.4 ]

let table3 () =
  section "Table 3 - thread partitioning strategy (n_t x R constant)";
  List.iter
    (fun pr ->
      subsection (Printf.sprintf "p_remote = %g, work = 4" pr);
      let base = { default with Params.p_remote = pr } in
      List.iter
        (fun pt -> Format.printf "  %a@." Partitioning.pp_point pt)
        (Partitioning.sweep base ~work:4. ~n_ts:[ 1; 2; 4 ]);
      subsection (Printf.sprintf "p_remote = %g, work = 8" pr);
      List.iter
        (fun pt -> Format.printf "  %a@." Partitioning.pp_point pt)
        (Partitioning.sweep base ~work:8. ~n_ts:[ 1; 2; 4; 8 ]))
    [ 0.2; 0.4 ]

(* ------------------------------------------------------------------ *)
(* Figure 8 and Table 4 *)

let figure8 () =
  section "Figure 8 - tol_memory vs (n_t, R) at p_remote = 0.2";
  List.iter
    (fun l ->
      subsection (Printf.sprintf "Figure 8: L = %g" l);
      let rs = [ 0.5; 1.; 2.; 4.; 8. ] in
      Format.printf "  n_t \\ R ";
      List.iter (fun r -> Format.printf "%7.3g" r) rs;
      Format.printf "@.";
      List.iter
        (fun nt ->
          Format.printf "  %7d" nt;
          List.iter
            (fun r ->
              let p =
                { default with Params.n_t = nt; runlength = r; l_mem = l }
              in
              Format.printf "%7.3f" (Tolerance.memory p).Tolerance.tol)
            rs;
          Format.printf "@.")
        [ 1; 2; 4; 6; 8; 10 ])
    [ 1.; 2. ]

let figure8_zones () =
  subsection
    "Figure 8 zone map (L = 2, p_remote = 0.2): tol_memory zones, rows n_t, \
     columns R = 0.5 .. 8";
  zone_map
    ~rows:[ 1.; 2.; 4.; 6.; 8.; 10. ]
    ~cols:[ 0.5; 1.; 2.; 4.; 8. ]
    ~value:(fun ~row ~col ->
      (Tolerance.memory
         { default with Params.n_t = int_of_float row; runlength = col;
           l_mem = 2. })
        .Tolerance.tol)

let table4 () =
  section "Table 4 - memory latency tolerance (p_remote = 0.2, n_t x R = 4)";
  Format.printf "  %3s %4s %6s %8s %8s %8s %10s@." "L" "n_t" "R" "L_obs"
    "S_obs" "U_p" "tol_memory";
  List.iter
    (fun l ->
      List.iter
        (fun (nt, r) ->
          let p =
            { default with Params.l_mem = l; n_t = nt; runlength = r }
          in
          let m = Mms.solve p in
          let t = Tolerance.memory p in
          Format.printf "  %3g %4d %6g %8.3f %8.3f %8.4f %10.4f@." l nt r
            m.Measures.l_obs m.Measures.s_obs m.Measures.u_p t.Tolerance.tol)
        [ (1, 4.); (2, 2.); (4, 1.); (8, 0.5) ])
    [ 1.; 2. ]

(* ------------------------------------------------------------------ *)
(* Figures 9 and 10 *)

let rec figure9 () =
  section
    "Figure 9 - tol_network (vs zero-delay ideal network) when scaling k, \
     geometric vs uniform";
  ignore
    (Csvout.table "fig9"
       ~header:
         ("R" :: "k" :: "pattern"
        :: List.map (fun nt -> Printf.sprintf "nt%d" nt) n_ts)
       (fun csv_row -> figure9_body csv_row))

and figure9_body csv_row =
  List.iter
    (fun r ->
      subsection (Printf.sprintf "Figure 9: R = %g" r);
      Format.printf "  %-24s" "series \\ n_t";
      List.iter (fun nt -> Format.printf "%7d" nt) n_ts;
      Format.printf "@.";
      List.iter
        (fun k ->
          List.iter
            (fun pattern ->
              let name =
                Printf.sprintf "k=%2d %s" k
                  (match pattern with
                  | Access.Uniform -> "uniform"
                  | Access.Geometric _ -> "geometric"
                  | Access.Explicit _ -> "explicit")
              in
              Format.printf "  %-24s" name;
              let cells =
                List.map
                  (fun nt ->
                    let p =
                      { default with Params.k; n_t = nt; runlength = r; pattern }
                    in
                    let t =
                      Tolerance.network ~ideal_method:Tolerance.Zero_delay p
                    in
                    Format.printf "%7.3f" t.Tolerance.tol;
                    Printf.sprintf "%.6f" t.Tolerance.tol)
                  n_ts
              in
              csv_row
                (Printf.sprintf "%g" r :: string_of_int k
                 :: (match pattern with
                    | Access.Uniform -> "uniform"
                    | Access.Geometric _ -> "geometric"
                    | Access.Explicit _ -> "explicit")
                 :: cells);
              Format.printf "@.")
            [ Access.Uniform; Access.Geometric 0.5 ])
        [ 2; 4; 6; 8; 10 ])
    [ 1.; 2. ]

let figure9_chart () =
  subsection "Figure 9 as a chart (R = 1, n_t = 8): tol_network vs k";
  let series pattern label =
    {
      Plot.label;
      points =
        List.map
          (fun k ->
            let p = { default with Params.k; pattern } in
            ( float_of_int k,
              (Tolerance.network ~ideal_method:Tolerance.Zero_delay p)
                .Tolerance.tol ))
          [ 2; 4; 6; 8; 10 ];
    }
  in
  Format.printf "%s@."
    (Plot.render ~y_min:0. ~y_max:1. ~x_label:"k (P = k^2)"
       ~y_label:"tol_network vs zero-delay ideal"
       [ series (Access.Geometric 0.5) "geometric(0.5)";
         series Access.Uniform "uniform" ])

let figure10 () =
  section "Figure 10 - system throughput and latencies when scaling P (n_t = 8, R = 1)";
  subsection "Figure 10(a): throughput P x lambda";
  Format.printf "  %4s %6s %10s %12s %10s %10s@." "k" "P" "linear"
    "ideal-net" "geometric" "uniform";
  ignore
    (Csvout.table "fig10a"
       ~header:[ "k"; "P"; "linear"; "ideal"; "geometric"; "uniform" ]
       (fun row ->
         List.iter
           (fun k ->
             let geo = Scaling.evaluate default ~k (Access.Geometric 0.5) in
             let uni = Scaling.evaluate default ~k Access.Uniform in
             Format.printf "  %4d %6d %10.2f %12.2f %10.2f %10.2f@." k
               geo.Scaling.num_processors
               (float_of_int geo.Scaling.num_processors)
               geo.Scaling.throughput_ideal geo.Scaling.throughput
               uni.Scaling.throughput;
             row
               [ string_of_int k;
                 string_of_int geo.Scaling.num_processors;
                 string_of_int geo.Scaling.num_processors;
                 Printf.sprintf "%.4f" geo.Scaling.throughput_ideal;
                 Printf.sprintf "%.4f" geo.Scaling.throughput;
                 Printf.sprintf "%.4f" uni.Scaling.throughput ])
           [ 2; 4; 6; 8; 10 ]));
  subsection "Figure 10(b): S_obs and L_obs";
  Format.printf "  %4s %6s | %10s %10s | %12s %10s %10s@." "k" "P"
    "S_obs geo" "S_obs uni" "L_obs ideal" "L_obs geo" "L_obs uni";
  List.iter
    (fun k ->
      let geo = Scaling.evaluate default ~k (Access.Geometric 0.5) in
      let uni = Scaling.evaluate default ~k Access.Uniform in
      Format.printf "  %4d %6d | %10.2f %10.2f | %12.2f %10.2f %10.2f@." k
        geo.Scaling.num_processors geo.Scaling.measures.Measures.s_obs
        uni.Scaling.measures.Measures.s_obs
        geo.Scaling.ideal_network.Measures.l_obs
        geo.Scaling.measures.Measures.l_obs
        uni.Scaling.measures.Measures.l_obs)
    [ 2; 4; 6; 8; 10 ]

(* ------------------------------------------------------------------ *)
(* Figure 11 - validation *)

let figure11 () =
  section
    "Figure 11 - validation: AMVA model vs STPN simulation vs DES (p_remote \
     = 0.5)";
  let rows = ref [] in
  let fig11_row cells = rows := cells :: !rows in
  let nts = [ 1; 2; 4; 6; 8 ] in
  List.iter
    (fun s ->
      subsection (Printf.sprintf "S = %g (STPN horizon 10k, DES horizon 20k)" s);
      Format.printf "  %4s | %9s %9s %9s | %9s %9s %9s@." "n_t" "ln.model"
        "ln.stpn" "ln.des" "So.model" "So.stpn" "So.des";
      List.iter
        (fun nt ->
          let p =
            { default with Params.p_remote = 0.5; n_t = nt; s_switch = s }
          in
          let model = Mms.solve p in
          let stpn =
            (Lattol_petri.Mms_stpn.run ~warmup:500. ~horizon:10_000. p)
              .Lattol_petri.Mms_stpn.measures
          in
          let des =
            (Lattol_sim.Mms_des.run
               ~config:
                 {
                   Lattol_sim.Mms_des.default_config with
                   Lattol_sim.Mms_des.horizon = 20_000.;
                   warmup = 500.;
                 }
               p)
              .Lattol_sim.Mms_des.measures
          in
          Format.printf "  %4d | %9.4f %9.4f %9.4f | %9.3f %9.3f %9.3f@." nt
            model.Measures.lambda_net stpn.Measures.lambda_net
            des.Measures.lambda_net model.Measures.s_obs stpn.Measures.s_obs
            des.Measures.s_obs;
          fig11_row
            [ Printf.sprintf "%g" s; string_of_int nt;
              Printf.sprintf "%.6f" model.Measures.lambda_net;
              Printf.sprintf "%.6f" stpn.Measures.lambda_net;
              Printf.sprintf "%.6f" des.Measures.lambda_net;
              Printf.sprintf "%.4f" model.Measures.s_obs;
              Printf.sprintf "%.4f" stpn.Measures.s_obs;
              Printf.sprintf "%.4f" des.Measures.s_obs ])
        nts)
    [ 1.; 2. ];
  ignore
    (Csvout.table "fig11"
       ~header:
         [ "S"; "n_t"; "lambda_net_model"; "lambda_net_stpn"; "lambda_net_des";
           "s_obs_model"; "s_obs_stpn"; "s_obs_des" ]
       (fun row -> List.iter row (List.rev !rows)));
  subsection "distribution sensitivity (paper: deterministic L moves S_obs < 10%)";
  let p = { default with Params.p_remote = 0.5; n_t = 4 } in
  let cfg =
    {
      Lattol_sim.Mms_des.default_config with
      Lattol_sim.Mms_des.horizon = 30_000.;
      warmup = 500.;
    }
  in
  let exp_run = (Lattol_sim.Mms_des.run ~config:cfg p).Lattol_sim.Mms_des.measures in
  let det_run =
    (Lattol_sim.Mms_des.run
       ~config:{ cfg with Lattol_sim.Mms_des.mem_model = Lattol_sim.Mms_des.Deterministic }
       p)
      .Lattol_sim.Mms_des.measures
  in
  Format.printf
    "  S_obs: exponential L = %.3f, deterministic L = %.3f (%.1f%% apart)@."
    exp_run.Measures.s_obs det_run.Measures.s_obs
    (100.
    *. abs_float (exp_run.Measures.s_obs -. det_run.Measures.s_obs)
    /. exp_run.Measures.s_obs)

(* ------------------------------------------------------------------ *)
(* Ablations: design choices the paper discusses but does not evaluate *)

let ablations () =
  section "Ablations - design implications from Section 7 and the symbol table";
  subsection
    "A1: memory multiporting (paper: 'multiporting/pipelining the memory can \
     be of help')";
  Format.printf "  %5s %8s %8s %10s %10s@." "ports" "U_p" "L_obs" "tol_mem"
    "tol_net";
  List.iter
    (fun ports ->
      let p = { default with Params.mem_ports = ports } in
      let m = Mms.solve p in
      let tm = (Tolerance.memory p).Tolerance.tol in
      let tn = (Tolerance.network p).Tolerance.tol in
      Format.printf "  %5d %8.4f %8.3f %10.4f %10.4f@." ports m.Measures.u_p
        m.Measures.l_obs tm tn)
    [ 1; 2; 3; 4 ];
  subsection
    "A2: local-memory priority, EM-4 style (DES; paper: 'prioritizing the \
     local memory requests can improve the performance of a system with a \
     very fast IN')";
  let compare_priority name p =
    let cfg = { Lattol_sim.Mms_des.default_config with horizon = 30_000. } in
    let fifo = (Lattol_sim.Mms_des.run ~config:cfg p).Lattol_sim.Mms_des.measures in
    let prio =
      (Lattol_sim.Mms_des.run
         ~config:{ cfg with Lattol_sim.Mms_des.local_memory_priority = true }
         p)
        .Lattol_sim.Mms_des.measures
    in
    Format.printf "  %-30s FCFS U_p=%.4f | local-priority U_p=%.4f (%+.4f)@."
      name fifo.Measures.u_p prio.Measures.u_p
      (prio.Measures.u_p -. fifo.Measures.u_p)
  in
  compare_priority "baseline 4x4" default;
  compare_priority "fast IN (k=6, S=0.01)"
    { default with Params.k = 6; s_switch = 0.01 };
  compare_priority "contended memory (L=2)"
    { default with Params.k = 6; s_switch = 0.01; l_mem = 2. };
  Format.printf
    "  finding: for the symmetric SPMD workload the heuristic consistently \
     hurts@.  aggregate U_p - starving remote responses keeps other \
     processors' threads@.  suspended (see EXPERIMENTS.md).@.";
  subsection "A3: context-switch overhead C (symbol table lists C; paper folds it into R)";
  Format.printf "  %6s %8s %8s@." "C" "U_p" "lambda";
  List.iter
    (fun c ->
      let m = Mms.solve { default with Params.context_switch = c } in
      Format.printf "  %6.2f %8.4f %8.4f@." c m.Measures.u_p m.Measures.lambda)
    [ 0.; 0.1; 0.25; 0.5; 1. ];
  subsection "A4: parameter sensitivity ranking at the Table 1 operating point";
  List.iter
    (fun d -> Format.printf "  %a@." Sensitivity.pp_derivative d)
    (Sensitivity.ranked default);
  subsection
    "A6: network dimensionality at P = 64 (ring vs torus vs cube, uniform \
     pattern)";
  Format.printf "  %4s %4s %8s %8s %8s@." "dim" "k" "U_p" "S_obs" "d_avg";
  List.iter
    (fun (k, d) ->
      let p =
        {
          default with
          Params.k;
          dimensions = d;
          p_remote = 0.4;
          pattern = Access.Uniform;
        }
      in
      let m = Mms.solve p in
      let b = Bottleneck.analyze p in
      Format.printf "  %4d %4d %8.4f %8.2f %8.2f@." d k m.Measures.u_p
        m.Measures.s_obs b.Bottleneck.d_avg)
    [ (64, 1); (8, 2); (4, 3) ];
  subsection
    "A7: AMVA variants vs exact MVA on the 2x2 machine (n_t = 3, p_remote = \
     0.5)";
  let tiny = { default with Params.k = 2; n_t = 3; p_remote = 0.5 } in
  let exact = Mms.solve ~solver:Mms.Exact_mva tiny in
  List.iter
    (fun (name, solver) ->
      let m = Mms.solve ~solver tiny in
      Format.printf "  %-16s U_p = %.6f (error %+.3f%%)@." name m.Measures.u_p
        (100. *. (m.Measures.u_p -. exact.Measures.u_p) /. exact.Measures.u_p))
    [
      ("exact MVA", Mms.Exact_mva);
      ("Bard-Schweitzer", Mms.General_amva);
      ("Linearizer", Mms.Linearizer_amva);
    ];
  subsection
    "A8: data distributions for a 3-point stencil loop (explicit em matrices)";
  Format.printf "  %-18s %9s %8s %8s@." "distribution" "p_remote" "U_p" "tol_net";
  List.iter
    (fun (d, ch, m, tol) ->
      Format.printf "  %-18s %9.4f %8.4f %8.4f@."
        (Workload.distribution_to_string d)
        ch.Workload.p_remote_mean m.Measures.u_p tol)
    (Workload.compare_distributions ~base:{ default with Params.n_t = 4 }
       ~elements:4096 ~stencil:[ -1; 0; 1 ] ~work_per_access:2.
       [ Workload.Block; Workload.Block_cyclic 4; Workload.Cyclic ])

let hotspot_ablation () =
  subsection
    "A10: hotspot traffic (every remote access targets node 0) - asymmetric \
     explicit pattern, full multi-class solve";
  let topo = Params.make_topology default in
  let n = Lattol_topology.Topology.num_nodes topo in
  Format.printf "  %9s %10s %10s %12s@." "p_remote" "U_p(hot)" "U_p(geo)"
    "hot mem util";
  List.iter
    (fun pr ->
      let matrix =
        Array.init n (fun src ->
            Array.init n (fun dst ->
                if src = 0 then (if dst = 0 then 1. else 0.)
                else if dst = src then 1. -. pr
                else if dst = 0 then pr
                else 0.))
      in
      let hot =
        Params.validate_exn
          { default with Params.pattern = Access.Explicit matrix }
      in
      (* Class 1 is a victim processor; node 0's memory is the hotspot. *)
      let sol = Mms.solve_network ~solver:Mms.General_amva hot in
      let hot_mem_util =
        Lattol_queueing.Solution.utilization sol
          ~station:(Mms.memory_station hot ~node:0)
      in
      let victim_u_p =
        sol.Lattol_queueing.Solution.throughput.(1)
        *. Params.processor_occupancy hot
      in
      let geo = Mms.solve { default with Params.p_remote = pr } in
      Format.printf "  %9.2f %10.4f %10.4f %12.4f@." pr victim_u_p
        geo.Measures.u_p hot_mem_util)
    [ 0.1; 0.2; 0.4 ];
  Format.printf
    "  the hotspot memory saturates long before the distributed pattern \
     suffers.@."

let trace_ablation () =
  subsection
    "A11: abstraction ladder on a cyclic stencil loop - analytical model vs \
     probabilistic DES vs execution trace replay";
  let base = { default with Params.n_t = 4 } in
  let loop =
    { Workload.elements = 4096; distribution = Workload.Cyclic;
      stencil = [ -1; 0; 1 ]; work_per_access = 2. }
  in
  let p = Workload.to_params ~base loop in
  let model = Mms.solve p in
  let cfg =
    { Lattol_sim.Mms_des.default_config with Lattol_sim.Mms_des.horizon = 30_000. }
  in
  let prob = (Lattol_sim.Mms_des.run ~config:cfg p).Lattol_sim.Mms_des.measures in
  let trace = Lattol_sim.Trace.of_loop ~base loop in
  let tr =
    (Lattol_sim.Mms_des.run_trace ~config:cfg ~base:p trace)
      .Lattol_sim.Mms_des.measures
  in
  Format.printf "  %-24s %8s %10s %8s %8s@." "level" "U_p" "lambda_net"
    "S_obs" "L_obs";
  List.iter
    (fun (name, (m : Measures.t)) ->
      Format.printf "  %-24s %8.4f %10.4f %8.3f %8.3f@." name m.Measures.u_p
        m.Measures.lambda_net m.Measures.s_obs m.Measures.l_obs)
    [ ("AMVA (explicit matrix)", model); ("DES (probabilistic)", prob);
      ("DES (trace replay)", tr) ];
  Format.printf
    "  the regular schedule and deterministic compute of the real loop beat@.\
    \  the memoryless abstractions - the model is a conservative bound here.@."

let su_ablation () =
  subsection
    "A12: EARTH-style synchronization unit - inline communication handling \
     (processor pays 2h per remote access) vs SU offload (a dedicated unit \
     pays h per touch)";
  let base = { default with Params.p_remote = 0.4 } in
  Format.printf "  %8s | %12s %12s | %10s@." "overhead" "inline U_p"
    "offload U_p" "SU util";
  List.iter
    (fun h ->
      let inline =
        Mms.solve
          { base with Params.context_switch = 2. *. h *. base.Params.p_remote }
      in
      let offload = Mms.solve { base with Params.sync_unit = h } in
      Format.printf "  %8.2f | %12.4f %12.4f | %10.3f@." h
        (inline.Measures.lambda *. base.Params.runlength)
        (offload.Measures.lambda *. base.Params.runlength)
        offload.Measures.util_sync)
    [ 0.1; 0.25; 0.5; 1. ];
  Format.printf
    "  (U_p shown is useful work, lambda x R, so the inline variant's \
     handling@.   cycles do not count as progress.)@."

let hetero_ablation () =
  subsection
    "A13: mixed workloads - batch traffic inflates interactive threads' \
     observed latency (multi-class interference)";
  let interactive =
    { Hetero.name = "interactive"; count = 2; runlength = 0.5; p_remote = 0.1;
      pattern = Access.Geometric 0.5 }
  in
  Format.printf "  %8s | %12s %14s | %8s@." "batch" "inter S_obs"
    "inter lambda" "U_p";
  List.iter
    (fun batch_count ->
      let groups =
        if batch_count = 0 then [ interactive ]
        else
          [ interactive;
            { Hetero.name = "batch"; count = batch_count; runlength = 2.;
              p_remote = 0.5; pattern = Access.Uniform } ]
      in
      let r = Hetero.solve ~base:default groups in
      let i = List.hd r.Hetero.groups in
      Format.printf "  %8d | %12.3f %14.4f | %8.4f@." batch_count
        i.Hetero.s_obs i.Hetero.lambda r.Hetero.u_p)
    [ 0; 2; 4; 6 ]

let pipeline_ablation () =
  subsection
    "A14: pipelined switches - the paper's own model limitation ('except to \
     achieve the low latency of pipelined networks') removed via \
     multiserver switch stations; Eq. 4's ceiling scales with depth";
  Format.printf "  %6s %9s %11s %8s %8s@." "depth" "ceiling" "lambda_net"
    "U_p" "S_obs";
  List.iter
    (fun depth ->
      let p =
        { default with Params.switch_pipeline = depth; p_remote = 0.6; n_t = 8 }
      in
      let b = Bottleneck.analyze p in
      let m = Mms.solve p in
      Format.printf "  %6d %9.3f %11.4f %8.4f %8.3f@." depth
        b.Bottleneck.lambda_net_saturation m.Measures.lambda_net
        m.Measures.u_p m.Measures.s_obs)
    [ 1; 2; 4; 8 ]

let optimizer_ablation () =
  subsection
    "A15: spending a hardware budget - exhaustive upgrade search at \
     p_remote = 0.4 (costs: port 2, pipeline 3, S/2 4, L/2 4, SU 2)";
  let base = { default with Params.p_remote = 0.4 } in
  List.iter
    (fun budget ->
      let best =
        Optimizer.best ~base ~budget (Optimizer.standard_upgrades ())
      in
      Format.printf "  budget %4g -> %a@." budget Optimizer.pp_configuration
        best)
    [ 0.; 2.; 4.; 6.; 8.; 12. ]

let locality_ablation () =
  subsection
    "A17: locality sweep - tol_network vs p_sw at k = 10 (the knob behind \
     Figure 9's geometric-vs-uniform contrast)";
  Format.printf "  %6s %8s %8s %8s@." "p_sw" "d_avg" "U_p" "tol_net";
  List.iter
    (fun p_sw ->
      let p =
        { default with Params.k = 10; pattern = Access.Geometric p_sw }
      in
      let b = Bottleneck.analyze p in
      let t = Tolerance.network ~ideal_method:Tolerance.Zero_delay p in
      Format.printf "  %6.2f %8.3f %8.4f %8.4f@." p_sw b.Bottleneck.d_avg
        t.Tolerance.u_p t.Tolerance.tol)
    [ 0.2; 0.4; 0.6; 0.8; 0.95 ];
  let uni = { default with Params.k = 10; pattern = Access.Uniform } in
  let t = Tolerance.network ~ideal_method:Tolerance.Zero_delay uni in
  Format.printf "  %6s %8.3f %8.4f %8.4f@." "unif"
    (Bottleneck.analyze uni).Bottleneck.d_avg t.Tolerance.u_p t.Tolerance.tol

let mesh_ablation () =
  subsection
    "A16: torus vs open mesh at the same k - losing the wraparound links \
     lengthens routes and breaks symmetry (general multi-class solve)";
  Format.printf "  %4s | %10s %10s | %10s %10s@." "k" "torus U_p" "mesh U_p"
    "torus S_obs" "mesh S_obs";
  List.iter
    (fun k ->
      let torus = Mms.solve { default with Params.k; p_remote = 0.4 } in
      let mesh =
        Mms.solve
          { default with Params.k; p_remote = 0.4;
            topology = Lattol_topology.Topology.Mesh }
      in
      Format.printf "  %4d | %10.4f %10.4f | %10.3f %10.3f@." k
        torus.Measures.u_p mesh.Measures.u_p torus.Measures.s_obs
        mesh.Measures.s_obs)
    [ 2; 4; 6 ]

let cache_ablation () =
  subsection
    "A9: cache contention caps the useful thread count (footnote 4; \
     contention-free vs cache-aware n_t sweep)";
  let cache = Cache_effects.default in
  let base = { default with Params.p_remote = 0.3 } in
  (* the contention-free comparison keeps the uncontended runlength *)
  let free_runlength = Cache_effects.runlength cache ~n_t:1 in
  Format.printf "  %4s | %12s | %9s %9s %9s@." "n_t" "free U_p" "hit" "R_eff"
    "U_p";
  List.iter
    (fun nt ->
      let free =
        (Mms.solve { base with Params.n_t = nt; runlength = free_runlength })
          .Measures.u_p
      in
      let pt =
        List.hd (Cache_effects.sweep cache ~base ~n_ts:[ nt ])
      in
      Format.printf "  %4d | %12.4f | %9.3f %9.2f %9.4f@." nt free
        pt.Cache_effects.hit_rate pt.Cache_effects.effective_runlength
        pt.Cache_effects.measures.Measures.u_p)
    [ 1; 2; 4; 6; 8; 12; 16 ];
  let best = Cache_effects.best_thread_count cache ~base ~max_threads:16 in
  Format.printf
    "  contention-free U_p is monotone in n_t; cache-aware peaks at n_t = %d.@."
    best.Cache_effects.n_t

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the solvers *)

let solver_benchmarks () =
  section "Solver micro-benchmarks (Bechamel)";
  let open Bechamel in
  let open Toolkit in
  let p44 = default in
  let p1010 = { default with Params.k = 10 } in
  let tiny = { default with Params.k = 2; n_t = 2 } in
  let tests =
    [
      Test.make ~name:"symmetric-amva 4x4"
        (Staged.stage (fun () -> ignore (Mms.solve ~solver:Mms.Symmetric_amva p44)));
      Test.make ~name:"symmetric-amva 10x10"
        (Staged.stage (fun () -> ignore (Mms.solve ~solver:Mms.Symmetric_amva p1010)));
      Test.make ~name:"general-amva 4x4"
        (Staged.stage (fun () -> ignore (Mms.solve ~solver:Mms.General_amva p44)));
      Test.make ~name:"linearizer 2x2 (n_t=3)"
        (Staged.stage (fun () ->
             ignore
               (Mms.solve ~solver:Mms.Linearizer_amva
                  { default with Params.k = 2; n_t = 3 })));
      Test.make ~name:"exact-mva 2x2 (n_t=2)"
        (Staged.stage (fun () -> ignore (Mms.solve ~solver:Mms.Exact_mva tiny)));
      Test.make ~name:"des 4x4 (t=2000)"
        (Staged.stage (fun () ->
             ignore
               (Lattol_sim.Mms_des.run
                  ~config:
                    {
                      Lattol_sim.Mms_des.default_config with
                      Lattol_sim.Mms_des.horizon = 2_000.;
                      warmup = 100.;
                    }
                  p44)));
      Test.make ~name:"stpn 4x4 (t=1000)"
        (Staged.stage (fun () ->
             ignore (Lattol_petri.Mms_stpn.run ~warmup:100. ~horizon:1_000. p44)));
    ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 1.5) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  Format.printf "  %-26s %14s %8s@." "solver" "time/run" "r^2";
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let est = Analyze.one ols Instance.monotonic_clock raw in
          let nanos =
            match Analyze.OLS.estimates est with
            | Some (t :: _) -> t
            | _ -> nan
          in
          let pretty =
            if nanos > 1e9 then Printf.sprintf "%.3f s" (nanos /. 1e9)
            else if nanos > 1e6 then Printf.sprintf "%.3f ms" (nanos /. 1e6)
            else if nanos > 1e3 then Printf.sprintf "%.3f us" (nanos /. 1e3)
            else Printf.sprintf "%.0f ns" nanos
          in
          Format.printf "  %-26s %14s %8s@." (Test.Elt.name elt) pretty
            (match Analyze.OLS.r_square est with
            | Some r2 -> Printf.sprintf "%.4f" r2
            | None -> "-"))
        (Test.elements test))
    tests

(* ------------------------------------------------------------------ *)

(* Wall-clock scaling of the replication fan-out: the same 16 DES
   replications under 1, 2, 4 and 8 worker domains.  On an 8-core machine
   the jobs=8 row shows >= 3x over jobs=1; on fewer cores the speedup
   degrades gracefully (the pool never oversubscribes results, only
   time).  Bechamel is wrong for this measurement — it reports CPU-like
   per-run cost, while speedup is about elapsed time. *)
let parallel_benchmarks () =
  section "Parallel replication fan-out (Domain pool)";
  let p = { default with Params.n_t = 4 } in
  let config =
    {
      Lattol_sim.Mms_des.default_config with
      Lattol_sim.Mms_des.horizon = 4_000.;
      warmup = 200.;
    }
  in
  let replications = 16 in
  let run jobs =
    ignore (Lattol_exec.Replicate.des ~jobs ~config ~replications p)
  in
  let time jobs =
    let t0 = Unix.gettimeofday () in
    run jobs;
    Unix.gettimeofday () -. t0
  in
  run 1 (* warm the code paths before timing *);
  let base = time 1 in
  Format.printf "  %d DES replications of %a, horizon %g (cores: %d)@."
    replications Params.pp p config.Lattol_sim.Mms_des.horizon
    (Lattol_exec.Pool.available_cores ());
  List.iter
    (fun jobs ->
      let t = if jobs = 1 then base else time jobs in
      Format.printf "  jobs=%d: %7.3f s  (speedup %.2fx)@." jobs t (base /. t))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)

let () =
  Csvout.configure ();
  Format.printf
    "Latency tolerance reproduction harness (Nemawarkar & Gao, IPPS 1997)@.";
  Format.printf "Defaults: %a@." Params.pp default;
  eq4_eq5 ();
  grid_figure ~runlength:1. ~fig:4;
  grid_figure ~runlength:2. ~fig:5;
  table2 ();
  figure6 ();
  figure6_zones ();
  figure7 ();
  table3 ();
  figure8 ();
  figure8_zones ();
  table4 ();
  figure9 ();
  figure9_chart ();
  figure10 ();
  figure11 ();
  ablations ();
  hotspot_ablation ();
  trace_ablation ();
  su_ablation ();
  hetero_ablation ();
  pipeline_ablation ();
  optimizer_ablation ();
  locality_ablation ();
  mesh_ablation ();
  cache_ablation ();
  solver_benchmarks ();
  parallel_benchmarks ();
  Csvout.note ();
  Format.printf "@.Done.@."
