(** The suites behind [mms bench], each producing one {!Bench_json.doc}.

    Quick mode ([~quick:true]) shrinks Bechamel quotas, simulation
    horizons and replication counts so a run finishes in seconds — same
    code paths, same metric names, coarser numbers.  CI smoke jobs and
    cram tests use it; perf-trajectory baselines should too, so the
    committed files stay cheap to regenerate. *)

val solvers : quick:bool -> unit -> Bench_json.doc
(** Micro-benchmarks of the four analytical solvers and both simulators:
    [solvers/<name>/time] (ns/run, Bechamel OLS estimate) and
    [solvers/<name>/minor_alloc] (minor words/run) per subject, plus
    absolute [Gc.quick_stat] word deltas over one un-timed run —
    [solvers/<name>/minor_words], [.../major_words] and
    [.../promoted_words] — so allocation drift gates alongside time
    drift. *)

val exec : quick:bool -> unit -> Bench_json.doc
(** Execution-layer numbers, all walls median-of-three:

    - [exec/scaling/cores]: {!Lattol_exec.Pool.available_cores} — the
      context every other number in the file must be read in;
    - [exec/replicate/wall_j1] and [exec/replicate/speedup_j{2,4,8}]:
      CPU-bound replication fan-out.  On an N-core machine the pool caps
      workers at N, so on a 1-core runner these sit near 1.0 by design
      (not above it — that is what [exec/pool/*] is for);
    - [exec/pool/speedup_j{2,4,8}]: pure dispatch scaling over tasks
      that park (sleep) rather than compute, with [oversubscribe] and
      [chunk:1].  Latency-bound tasks overlap on any core count, so
      these are the portable floor-gated speedups (CI asserts j2 >= a
      hard floor);
    - [exec/figures/speedup_j2]: a figures-shaped two-axis analytical
      grid, fresh cache per timing;
    - [exec/cache/warm_hit_rate] (deterministically 1.0) and
      [exec/cache/lookup_time] as before. *)
