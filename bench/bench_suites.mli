(** The suites behind [mms bench], each producing one {!Bench_json.doc}.

    Quick mode ([~quick:true]) shrinks Bechamel quotas, simulation
    horizons and replication counts so a run finishes in seconds — same
    code paths, same metric names, coarser numbers.  CI smoke jobs and
    cram tests use it; perf-trajectory baselines should too, so the
    committed files stay cheap to regenerate. *)

val solvers : quick:bool -> unit -> Bench_json.doc
(** Micro-benchmarks of the four analytical solvers and both simulators:
    [solvers/<name>/time] (ns/run, Bechamel OLS estimate) and
    [solvers/<name>/minor_alloc] (minor words/run) per subject, plus
    absolute [Gc.quick_stat] word deltas over one un-timed run —
    [solvers/<name>/minor_words], [.../major_words] and
    [.../promoted_words] — so allocation drift gates alongside time
    drift. *)

val exec : quick:bool -> unit -> Bench_json.doc
(** Execution-layer numbers: replication fan-out wall-clock and speedup
    at [--jobs 2]/[--jobs 4] ([exec/replicate/*]), the warm-cache hit
    rate of a repeated sweep (deterministically 1.0 —
    [exec/cache/warm_hit_rate]) and the memo lookup cost on a resident
    key ([exec/cache/lookup_time]). *)
