(* Versioned benchmark documents — the BENCH_*.json files `mms bench`
   emits and tools/bench_compare diffs against a committed baseline.  The
   schema is deliberately tiny (flat metric list, one per line) so the
   files diff well under version control and need no JSON library to
   read or write. *)

let schema = "lattol-bench/1"

type metric = { name : string; units : string; value : float }

type doc = { suite : string; quick : bool; metrics : metric list }

(* ------------------------------------------------------------------ *)
(* writer *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Shortest decimal that round-trips; non-finite measurements (a bench
   that failed to produce an estimate) degrade to null. *)
let json_number v =
  if not (Float.is_finite v) then "null"
  else
    let s = Printf.sprintf "%.15g" v in
    if Float.equal (float_of_string s) v then s
    else
      let s = Printf.sprintf "%.16g" v in
      if Float.equal (float_of_string s) v then s
      else Printf.sprintf "%.17g" v

let write doc oc =
  Printf.fprintf oc "{\n  \"schema\": \"%s\",\n  \"suite\": \"%s\",\n"
    (escape schema) (escape doc.suite);
  Printf.fprintf oc "  \"quick\": %b,\n  \"metrics\": [\n" doc.quick;
  let n = List.length doc.metrics in
  List.iteri
    (fun i m ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"unit\": \"%s\", \"value\": %s}%s\n"
        (escape m.name) (escape m.units) (json_number m.value)
        (if i = n - 1 then "" else ","))
    doc.metrics;
  output_string oc "  ]\n}\n"

let to_file doc file =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write doc oc)

(* ------------------------------------------------------------------ *)
(* parser — a minimal recursive-descent JSON reader, enough for the
   schema above (and any JSON superset of it: unknown fields are
   ignored). *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when Char.equal c c' -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.equal (String.sub s !pos (String.length word)) word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some 'n' ->
          Buffer.add_char b '\n';
          advance ();
          go ()
        | Some 't' ->
          Buffer.add_char b '\t';
          advance ();
          go ()
        | Some 'u' ->
          (* Keep the code point as-is when ASCII; the writer only emits
             \u for control characters. *)
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
          | Some _ -> Buffer.add_char b '?'
          | None -> fail "bad \\u escape");
          go ()
        | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
        | None -> fail "unterminated escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let number_lit () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some v -> v
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number_lit ())
    | _ -> fail "expected a JSON value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Obj []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws ();
        let key = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          members ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      members ();
      Obj (List.rev !fields)
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin
      advance ();
      Arr []
    end
    else begin
      let items = ref [] in
      let rec elements () =
        let v = value () in
        items := v :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
          advance ();
          elements ()
        | Some ']' -> advance ()
        | _ -> fail "expected ',' or ']'"
      in
      elements ();
      Arr (List.rev !items)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing content";
  v

let field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let doc_of_json j =
  match field "schema" j with
  | Some (Str s) when String.equal s schema -> (
    let suite =
      match field "suite" j with Some (Str s) -> s | _ -> raise (Parse "missing suite")
    in
    let quick = match field "quick" j with Some (Bool b) -> b | _ -> false in
    match field "metrics" j with
    | Some (Arr items) ->
      let metric m =
        match (field "name" m, field "unit" m, field "value" m) with
        | Some (Str name), Some (Str units), Some (Num value) ->
          { name; units; value }
        | Some (Str name), Some (Str units), Some Null ->
          { name; units; value = nan }
        | _ -> raise (Parse "malformed metric entry")
      in
      { suite; quick; metrics = List.map metric items }
    | _ -> raise (Parse "missing metrics array"))
  | Some (Str s) -> raise (Parse (Printf.sprintf "unsupported schema %S" s))
  | _ -> raise (Parse "missing schema field")

let load file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
    match doc_of_json (parse_json text) with
    | doc -> Ok doc
    | exception Parse msg -> Error (Printf.sprintf "%s: %s" file msg))

(* ------------------------------------------------------------------ *)
(* baseline comparison *)

type delta = {
  metric : string;
  base_value : float;
  current_value : float;
  rel : float;  (** |current - base| / max(|base|, epsilon) *)
}

type comparison = {
  within : delta list;
  regressions : delta list;
  missing : string list;  (** in the baseline, absent from current *)
  added : string list;    (** in current, absent from the baseline *)
}

let rel_delta base current =
  if Float.is_nan base && Float.is_nan current then 0.
  else if Float.is_nan base || Float.is_nan current then infinity
  else Float.abs (current -. base) /. Float.max (Float.abs base) 1e-12

(* Symmetric drift gate: a metric counts as a regression when it moved by
   more than [max_rel] in either direction — benchmarks that get faster
   by 10x deserve a look (and a baseline refresh) just as much as ones
   that got slower. *)
let compare_docs ~max_rel ~base ~current =
  let find name metrics =
    List.find_opt (fun m -> String.equal m.name name) metrics
  in
  let within, regressions, missing =
    List.fold_left
      (fun (ok, bad, missing) b ->
        match find b.name current.metrics with
        | None -> (ok, bad, b.name :: missing)
        | Some c ->
          let d =
            {
              metric = b.name;
              base_value = b.value;
              current_value = c.value;
              rel = rel_delta b.value c.value;
            }
          in
          if d.rel > max_rel then (ok, d :: bad, missing)
          else (d :: ok, bad, missing))
      ([], [], []) base.metrics
  in
  let added =
    List.filter_map
      (fun c ->
        match find c.name base.metrics with
        | None -> Some c.name
        | Some _ -> None)
      current.metrics
  in
  {
    within = List.rev within;
    regressions = List.rev regressions;
    missing = List.rev missing;
    added;
  }

(* ------------------------------------------------------------------ *)
(* one-sided bounds (floors and ceilings)

   For metrics where only one direction is a regression — a parallel
   speedup drifting UP is good news, an allocation count drifting DOWN
   is — the symmetric drift gate is the wrong shape.  A floor fails when
   the metric is below the bound, a ceiling when above; both fail when
   the metric is absent (a silently vanished speedup must not pass).
   NaN never satisfies a bound: a benchmark that failed to produce an
   estimate is a broken bound, not a free pass. *)

type bound_result = Holds | Broken of float | Absent

let find_metric doc name =
  List.find_opt (fun m -> String.equal m.name name) doc.metrics

let check_bound ~ok doc (name, bound) =
  match find_metric doc name with
  | None -> (name, bound, Absent)
  | Some m -> (name, bound, if ok m.value bound then Holds else Broken m.value)

let check_floor doc = check_bound ~ok:( >= ) doc

let check_ceiling doc = check_bound ~ok:( <= ) doc
