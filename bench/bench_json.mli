(** Versioned benchmark documents (the [BENCH_*.json] files).

    [mms bench] writes one document per suite; [tools/bench_compare]
    loads two of them and gates on relative drift.  The format is
    self-contained — flat metric list, one entry per line — so the files
    diff well in version control and round-trip without a JSON
    dependency. *)

val schema : string
(** The format version tag written into every document:
    ["lattol-bench/1"].  {!load} rejects anything else. *)

type metric = {
  name : string;   (** hierarchical id, e.g. ["solvers/symmetric_4x4/time"] *)
  units : string;  (** e.g. ["ns/run"], ["w/run"], ["x"], ["ratio"] *)
  value : float;   (** [nan] round-trips as JSON [null] *)
}

type doc = { suite : string; quick : bool; metrics : metric list }

val write : doc -> out_channel -> unit

val to_file : doc -> string -> unit

val load : string -> (doc, string) result
(** Parse a document written by {!write} (or any JSON superset of it —
    unknown fields are ignored).  [Error] carries a one-line message with
    the file name and offset. *)

type delta = {
  metric : string;
  base_value : float;
  current_value : float;
  rel : float;  (** |current - base| / max(|base|, epsilon) *)
}

type comparison = {
  within : delta list;       (** drift within the threshold *)
  regressions : delta list;  (** drift beyond the threshold *)
  missing : string list;     (** in the baseline, absent from current *)
  added : string list;       (** in current, absent from the baseline *)
}

val compare_docs : max_rel:float -> base:doc -> current:doc -> comparison
(** Symmetric drift gate: a metric regresses when it moved by more than
    [max_rel] (relative) in either direction, or when it disappeared
    ({!comparison.missing} entries are regressions too — the caller
    decides the exit code).  Metrics only present in [current] are
    reported as {!comparison.added}, never as failures. *)

type bound_result =
  | Holds
  | Broken of float  (** the offending current value *)
  | Absent           (** the metric is not in the document at all *)

val find_metric : doc -> string -> metric option

val check_floor : doc -> string * float -> string * float * bound_result
(** [check_floor doc (name, min)] is {!Broken} when [name]'s value is
    below [min] {e or is NaN} (a benchmark that failed to produce an
    estimate must not pass a one-sided gate), {!Absent} when the metric
    is missing, {!Holds} otherwise — a value exactly at the bound
    holds. *)

val check_ceiling : doc -> string * float -> string * float * bound_result
(** Mirror image of {!check_floor}: {!Broken} above [max] or on NaN. *)
