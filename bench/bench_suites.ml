(* The benchmark suites behind `mms bench`.

   Two suites, each emitted as one Bench_json document:

   - "solvers": Bechamel micro-benchmarks of the analytical solvers and
     both simulators — time per run and minor-heap allocation per run;
   - "exec": end-to-end numbers for the execution layer — replication
     fan-out speedup over --jobs, warm-cache behaviour and memo lookup
     cost.

   Quick mode trades precision for wall-clock (tiny Bechamel quotas,
   short horizons, few replications): it exists so CI smoke jobs and
   cram tests finish in seconds while exercising the same code paths and
   emitting the same metric set as a full run. *)

open Lattol_core

let default = Params.default

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing *)

let ols =
  Bechamel.Analyze.ols ~bootstrap:0 ~r_square:false
    ~predictors:[| Bechamel.Measure.run |]

let estimate raw instance =
  let est = Bechamel.Analyze.one ols instance raw in
  match Bechamel.Analyze.OLS.estimates est with
  | Some (t :: _) -> t
  | Some [] | None -> nan

(* One un-timed run bracketed by [Gc.quick_stat]: absolute word deltas
   per subject.  Unlike the Bechamel per-run estimate these include major
   and promoted words, so an allocation diet (ROADMAP item 3) can gate
   all three directions of heap pressure, not just minor churn. *)
let gc_deltas ~name f =
  let s0 = Gc.quick_stat () in
  f ();
  let s1 = Gc.quick_stat () in
  let m field value =
    {
      Bench_json.name = Printf.sprintf "solvers/%s/%s" name field;
      units = "w";
      value;
    }
  in
  [
    m "minor_words" (s1.Gc.minor_words -. s0.Gc.minor_words);
    m "major_words" (s1.Gc.major_words -. s0.Gc.major_words);
    m "promoted_words" (s1.Gc.promoted_words -. s0.Gc.promoted_words);
  ]

(* Per-run time and minor allocation for one thunk, as two metrics. *)
let bench ~quick ~name f =
  let open Bechamel in
  let cfg =
    if quick then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.025) ~kde:None ()
    else Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let instances =
    Toolkit.Instance.[ monotonic_clock; minor_allocated ]
  in
  let test = Test.make ~name (Staged.stage f) in
  List.concat_map
    (fun elt ->
      let raw = Benchmark.run cfg instances elt in
      [
        {
          Bench_json.name = Printf.sprintf "solvers/%s/time" name;
          units = "ns/run";
          value = estimate raw Toolkit.Instance.monotonic_clock;
        };
        {
          Bench_json.name = Printf.sprintf "solvers/%s/minor_alloc" name;
          units = "w/run";
          value = estimate raw Toolkit.Instance.minor_allocated;
        };
      ])
    (Test.elements test)
  @ gc_deltas ~name f

(* ------------------------------------------------------------------ *)
(* suite: solvers *)

let solvers ~quick () =
  let p44 = default in
  let tiny = { default with Params.k = 2; n_t = 2 } in
  let des_horizon = if quick then 500. else 2_000. in
  let stpn_horizon = if quick then 300. else 1_000. in
  let metrics =
    List.concat
      [
        bench ~quick ~name:"symmetric_4x4" (fun () ->
            ignore (Mms.solve ~solver:Mms.Symmetric_amva p44));
        bench ~quick ~name:"general_4x4" (fun () ->
            ignore (Mms.solve ~solver:Mms.General_amva p44));
        bench ~quick ~name:"linearizer_2x2" (fun () ->
            ignore
              (Mms.solve ~solver:Mms.Linearizer_amva
                 { default with Params.k = 2; n_t = 3 }));
        bench ~quick ~name:"exact_2x2" (fun () ->
            ignore (Mms.solve ~solver:Mms.Exact_mva tiny));
        bench ~quick ~name:"des_4x4" (fun () ->
            ignore
              (Lattol_sim.Mms_des.run
                 ~config:
                   {
                     Lattol_sim.Mms_des.default_config with
                     Lattol_sim.Mms_des.horizon = des_horizon;
                     warmup = 100.;
                   }
                 p44));
        bench ~quick ~name:"stpn_4x4" (fun () ->
            ignore
              (Lattol_petri.Mms_stpn.run ~warmup:100. ~horizon:stpn_horizon p44));
      ]
  in
  { Bench_json.suite = "solvers"; quick; metrics }

(* ------------------------------------------------------------------ *)
(* suite: exec *)

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* Median of three timed runs: one slow outlier (a GC major slice, an OS
   scheduling hiccup) must not decide a committed speedup baseline. *)
let wall3 f =
  match List.sort Float.compare [ wall f; wall f; wall f ] with
  | [ _; m; _ ] -> m
  | _ -> assert false

let speedup ~serial t = serial /. Float.max t 1e-9

let exec ~quick () =
  let replications = if quick then 8 else 16 in
  let horizon = if quick then 2_000. else 10_000. in
  let p = { default with Params.n_t = 4 } in
  let config =
    {
      Lattol_sim.Mms_des.default_config with
      Lattol_sim.Mms_des.horizon;
      warmup = 100.;
    }
  in
  let replicate jobs =
    ignore (Lattol_exec.Replicate.des ~jobs ~config ~replications p)
  in
  replicate 1 (* warm the code paths before timing *);
  let t1 = wall3 (fun () -> replicate 1) in
  let t2 = wall3 (fun () -> replicate 2) in
  let t4 = wall3 (fun () -> replicate 4) in
  let t8 = wall3 (fun () -> replicate 8) in
  (* Pure pool-dispatch scaling, isolated from the simulators: tasks that
     PARK (sleep) instead of burning cycles overlap on any machine — the
     latency-tolerance premise applied to the pool itself — so these
     speedups hold even on a single-core runner, where CPU-bound speedup
     is physically capped at 1.  [oversubscribe] lifts the core clamp
     (parked tasks don't contend) and [chunk:1] forces one claim per
     task, making this also a worst-case scheduling-overhead gate. *)
  let pool_tasks = 16 in
  let nap = if quick then 0.004 else 0.01 in
  let dispatch jobs =
    ignore
      (Lattol_exec.Pool.map ~jobs ~oversubscribe:true ~chunk:1
         (fun _ -> Unix.sleepf nap)
         (Array.init pool_tasks Fun.id))
  in
  dispatch 1;
  let d1 = wall3 (fun () -> dispatch 1) in
  let d2 = wall3 (fun () -> dispatch 2) in
  let d4 = wall3 (fun () -> dispatch 4) in
  let d8 = wall3 (fun () -> dispatch 8) in
  (* The figures batch shape: a two-axis analytical grid, solved with a
     fresh cache per run so every timing performs the same solves. *)
  let fig_axes =
    [
      {
        Lattol_exec.Sweep.param = Lattol_exec.Sweep.N_t;
        values = [ 1.; 2.; 3.; 4. ];
      };
      {
        Lattol_exec.Sweep.param = Lattol_exec.Sweep.P_remote;
        values =
          Lattol_exec.Sweep.linspace ~lo:0. ~hi:1.
            ~steps:(if quick then 5 else 11);
      };
    ]
  in
  let figures_grid jobs =
    let cache = Lattol_exec.Cache.create () in
    ignore (Lattol_exec.Sweep.run ~cache ~jobs ~base:default fig_axes)
  in
  figures_grid 1;
  let f1 = wall3 (fun () -> figures_grid 1) in
  let f2 = wall3 (fun () -> figures_grid 2) in
  (* Causal-tracing overhead: the same grid with a live recorder attached.
     A wall ratio, so it is machine-independent; the CI ceiling on it pins
     the standing "tracing stays cheap" promise. *)
  let traced_grid () =
    let cache = Lattol_exec.Cache.create () in
    let recorder = Lattol_obs.Trace_ctx.create ~root:"bench" () in
    ignore
      (Lattol_exec.Sweep.run ~cache ~jobs:1
         ~causal:(Lattol_obs.Trace_ctx.root_ctx recorder)
         ~base:default fig_axes)
  in
  traced_grid ();
  let ft = wall3 traced_grid in
  let trace_overhead = ft /. Float.max f1 1e-9 in
  (* Warm-cache behaviour: the second identical sweep must be served
     entirely from the memo. *)
  let cache = Lattol_exec.Cache.create () in
  let axes =
    [
      {
        Lattol_exec.Sweep.param = Lattol_exec.Sweep.N_t;
        values = Lattol_exec.Sweep.linspace ~lo:1. ~hi:8. ~steps:8;
      };
    ]
  in
  let sweep () =
    ignore (Lattol_exec.Sweep.run ~cache ~jobs:1 ~base:default axes)
  in
  sweep ();
  let cold = Lattol_exec.Cache.stats cache in
  sweep ();
  let warm = Lattol_exec.Cache.stats cache in
  let second_lookups =
    warm.Lattol_exec.Cache.memo_hits - cold.Lattol_exec.Cache.memo_hits
  in
  let second_solves =
    warm.Lattol_exec.Cache.solves - cold.Lattol_exec.Cache.solves
  in
  let warm_hit_rate =
    if second_lookups + second_solves = 0 then nan
    else
      float_of_int second_lookups /. float_of_int (second_lookups + second_solves)
  in
  (* Memo lookup cost on a resident key. *)
  let key = Lattol_exec.Cache.key ~solver_id:"bench" default in
  let solve () = Mms.solve default in
  ignore (Lattol_exec.Cache.find_or_compute cache ~key solve);
  let lookup_timing =
    let open Bechamel in
    let cfg =
      if quick then
        Benchmark.cfg ~limit:50 ~quota:(Time.second 0.025) ~kde:None ()
      else Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None ()
    in
    let test =
      Test.make ~name:"lookup"
        (Staged.stage (fun () ->
             ignore (Lattol_exec.Cache.find_or_compute cache ~key solve)))
    in
    List.map
      (fun elt ->
        let raw =
          Benchmark.run cfg Toolkit.Instance.[ monotonic_clock ] elt
        in
        {
          Bench_json.name = "exec/cache/lookup_time";
          units = "ns/run";
          value = estimate raw Toolkit.Instance.monotonic_clock;
        })
      (Test.elements test)
  in
  let m name units value = { Bench_json.name; units; value } in
  let metrics =
    [
      m "exec/scaling/cores" "n"
        (float_of_int (Lattol_exec.Pool.available_cores ()));
      m "exec/replicate/wall_j1" "s" t1;
      m "exec/replicate/speedup_j2" "x" (speedup ~serial:t1 t2);
      m "exec/replicate/speedup_j4" "x" (speedup ~serial:t1 t4);
      m "exec/replicate/speedup_j8" "x" (speedup ~serial:t1 t8);
      m "exec/pool/speedup_j2" "x" (speedup ~serial:d1 d2);
      m "exec/pool/speedup_j4" "x" (speedup ~serial:d1 d4);
      m "exec/pool/speedup_j8" "x" (speedup ~serial:d1 d8);
      m "exec/figures/speedup_j2" "x" (speedup ~serial:f1 f2);
      m "obs/trace/overhead" "x" trace_overhead;
      m "exec/cache/warm_hit_rate" "ratio" warm_hit_rate;
    ]
    @ lookup_timing
  in
  { Bench_json.suite = "exec"; quick; metrics }
